"""The TransN model: Algorithm 1 end to end.

Usage:
    >>> from repro.core import TransN, TransNConfig
    >>> from repro.datasets import two_view_toy
    >>> graph, _ = two_view_toy()
    >>> model = TransN(graph, TransNConfig(num_iterations=1))
    >>> history = model.fit()
    >>> emb = model.embedding("i0")
    >>> emb.shape
    (32,)
"""

from __future__ import annotations

import copy
import weakref
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from repro.engine import (
    Callback,
    Checkpointer,
    CheckpointManager,
    LoopResult,
    MetricsRegistry,
    NumericalHealthGuard,
    Phase,
    RelationBalancer,
    RunReport,
    Tracer,
    TrainingLoop,
)
from repro.engine import faults
from repro.engine.parallel import ParallelRuntime, pair_rng
from repro.graph.heterograph import HeteroGraph, NodeId
from repro.graph.views import build_view_pairs, separate_views
from repro.walks import WalkPolicy, make_policy

from repro.core.config import TransNConfig
from repro.core.cross_view import CrossViewTrainer
from repro.core.single_view import SingleViewTrainer

SINGLE_VIEW_PHASE = "single_view"
CROSS_VIEW_PHASE = "cross_view"

# config fields that may differ between a checkpoint and the model
# resuming from it: they steer the training *run* (how long, how it is
# snapshotted/guarded) rather than the trajectory-defining hyper-parameters
_RESUME_EXEMPT_CONFIG_FIELDS = frozenset(
    {"num_iterations", "checkpoint_every", "health_policy"}
)


class _SingleViewPhase(Phase):
    """Algorithm 1 lines 3-8 as an engine phase.

    The learning rate lives on the phase (like
    :class:`~repro.engine.loop.SkipGramPhase`) so scheduling callbacks and
    the health guard's rollback halving can adjust it between epochs.
    """

    def __init__(self, model: "TransN") -> None:
        super().__init__(SINGLE_VIEW_PHASE)
        self._model = model
        self.lr = model.config.lr_single

    def run(self, loop: TrainingLoop, epoch: int) -> dict[str, float]:
        return self._model._single_view_step(self.lr)


class _CrossViewPhase(Phase):
    """Algorithm 1 lines 9-12 as an engine phase.

    The cross-view step involves three coupled learning rates per trainer
    (translator Adam plus the two common-node RowAdam rates), tuned as a
    ratio.  The phase exposes a single scalar ``lr`` — the translator rate
    — and setting it rescales *all* rates of every cross trainer by the
    same factor, preserving the tuned ratio.
    """

    def __init__(self, model: "TransN") -> None:
        super().__init__(CROSS_VIEW_PHASE)
        self._model = model
        self._lr = model.config.lr_cross

    @property
    def lr(self) -> float:
        return self._lr

    @lr.setter
    def lr(self, value: float) -> None:
        if value <= 0:
            raise ValueError(f"lr must be > 0, got {value}")
        factor = value / self._lr
        for trainer in self._model.cross_trainers:
            trainer.scale_learning_rates(factor)
        self._lr = value

    def _set_lr_silently(self, value: float) -> None:
        """Record ``value`` without touching the trainers — used when a
        checkpoint restore has already set the optimizer rates directly."""
        self._lr = value

    def run(self, loop: TrainingLoop, epoch: int) -> dict[str, float]:
        return self._model._cross_view_step()


@dataclass
class TrainingHistory:
    """Loss trajectories recorded by :meth:`TransN.fit`."""

    single_view: list[float] = field(default_factory=list)
    translation: list[float] = field(default_factory=list)
    reconstruction: list[float] = field(default_factory=list)

    @property
    def num_iterations(self) -> int:
        return len(self.single_view)


class TransN:
    """Heterogeneous network embedding by translating node embeddings.

    The constructor performs step 1 of Algorithm 1 (view and view-pair
    generation) and allocates one view-specific embedding matrix per view;
    :meth:`fit` runs the K alternating single-view / cross-view
    iterations; the final embedding of a node is the average of its
    view-specific embeddings (Section III-C).
    """

    def __init__(self, graph: HeteroGraph, config: TransNConfig | None = None) -> None:
        if graph.num_edges == 0:
            raise ValueError("TransN needs a graph with at least one edge")
        self.graph = graph
        self.config = config or TransNConfig()
        self.rng = np.random.default_rng(self.config.seed)

        self.views = separate_views(graph)
        self.view_pairs = build_view_pairs(self.views) if self.config.use_cross_view else []

        cfg = self.config
        # word2vec-style init: small uniform noise.  Crucially, a node's
        # view-specific embeddings start IDENTICAL across views (drawn once
        # per node): each view's skip-gram then deforms a shared origin
        # instead of an independent random space, so the final averaging of
        # view-specific embeddings (Section III-C) combines roughly aligned
        # spaces — the cross-view translation keeps them aligned during
        # training.  The paper does not specify initialization; independent
        # per-view inits measurably hurt the averaged embedding.
        bound = 0.5 / cfg.dim
        # always draw in float64 (RNG consumption is dtype-independent),
        # then cast: float32 mode changes storage, never the draw stream
        node_init = self.rng.uniform(
            -bound, bound, size=(graph.num_nodes, cfg.dim)
        ).astype(cfg.resolved_dtype, copy=False)
        self.view_embeddings: dict[str, np.ndarray] = {}
        for view in self.views:
            matrix = np.empty(
                (view.num_nodes, cfg.dim), dtype=cfg.resolved_dtype
            )
            for node in view.graph.nodes:
                matrix[view.graph.index_of(node)] = node_init[
                    graph.index_of(node)
                ]
            self.view_embeddings[view.edge_type] = matrix

        # the parallel runtime (workers >= 1) is created eagerly, on the
        # main thread, before any helper thread exists — fork-safety of
        # the worker pool (see repro.engine.parallel) — and torn down by
        # a finalizer when the model is collected
        self._parallel = (
            ParallelRuntime(cfg.workers, shard_timeout=cfg.shard_timeout)
            if cfg.workers > 0
            else None
        )
        if self._parallel is not None:
            weakref.finalize(self, self._parallel.shutdown)
        balancing_possible = (
            cfg.resolved_walk_policy == "relation-balanced"
            and cfg.balance_strength > 0
            and len(self.views) > 1
        )
        # under relation balancing a prefetched corpus would use a
        # one-epoch-stale walk share, so prefetch is opt-in there; under
        # streaming, double-buffering whole corpora would defeat the
        # bounded-memory point, so prefetch stays off (config validation
        # rejects an explicit prefetch=True)
        prefetch = (
            cfg.prefetch
            if cfg.prefetch is not None
            else (
                self._parallel is not None
                and not balancing_possible
                and not cfg.stream_corpus
            )
        )
        self._cross_steps = 0  # cross-view step clock (parallel rng key)

        self.single_trainers = [
            SingleViewTrainer(
                view,
                self.view_embeddings[view.edge_type],
                rng=self.rng,
                walk_length=cfg.walk_length,
                walk_floor=cfg.walk_floor,
                walk_cap=cfg.walk_cap,
                num_negatives=cfg.num_negatives,
                batch_size=cfg.batch_size,
                policy=self._view_policy(),
                parallel=self._parallel,
                prefetch=bool(prefetch),
                seed=cfg.seed,
                view_code=view_code,
                stream_corpus=cfg.stream_corpus,
                corpus_budget_bytes=cfg.corpus_budget_bytes,
                spill_path=(
                    Path(cfg.spill_dir) / f"view{view_code}.spill"
                    if cfg.spill_dir is not None
                    else None
                ),
                on_spill_error=cfg.on_spill_error,
            )
            for view_code, view in enumerate(self.views)
        ]

        self.cross_trainers = [
            CrossViewTrainer(
                pair,
                self.view_embeddings[pair.view_i.edge_type],
                self.view_embeddings[pair.view_j.edge_type],
                rng=self.rng,
                dim=cfg.dim,
                cross_path_len=cfg.cross_path_len,
                num_encoders=cfg.num_encoders,
                walk_length=cfg.walk_length,
                paths_per_epoch=cfg.cross_paths_per_pair,
                lr_cross=cfg.lr_cross,
                lr_cross_embeddings=cfg.lr_cross_embeddings,
                policy_factory=self._view_policy,
                simple_translator=cfg.simple_translator,
                use_translation_tasks=cfg.use_translation_tasks,
                use_reconstruction_tasks=cfg.use_reconstruction_tasks,
                normalize_similarity=cfg.normalize_similarity,
                batched=cfg.batched_cross_view,
            )
            for pair in self.view_pairs
        ]

        # phases are created once (not per fit call) so learning-rate
        # adjustments made by callbacks — LR schedules, the health guard's
        # rollback halving — survive repeated fit() calls and are part of
        # the checkpointed state
        self._phases: list[Phase] = [_SingleViewPhase(self)]
        if self.cross_trainers:
            self._phases.append(_CrossViewPhase(self))

        self.history = TrainingHistory()
        self.last_run: LoopResult | None = None
        self.timings: dict[str, float] = {}
        self._fitted = False

    # ------------------------------------------------------------------
    def _view_policy(self) -> WalkPolicy:
        """A fresh walk policy per view/subview from the config knobs.

        Policies bind to exactly one graph, so every trainer gets its own
        instance.  The relation-balanced mode walks with the paper's
        biased policy — its balancing lives in the
        :class:`~repro.engine.RelationBalancer` loop callback, attached
        by :meth:`fit`.  Metapath-family policies derive their cycle from
        each view's node types at bind time.
        """
        cfg = self.config
        return make_policy(
            cfg.resolved_walk_policy,
            p=cfg.walk_p,
            q=cfg.walk_q,
            type_switch=cfg.type_switch,
        )

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def _single_view_step(self, lr: float) -> dict[str, float]:
        """Lines 3-8 of Algorithm 1: one skip-gram pass per view."""
        losses = [
            trainer.train_epoch(lr=lr)
            for trainer in self.single_trainers
        ]
        value = float(np.mean(losses))
        self.history.single_view.append(value)
        return {"loss": value}

    def _cross_view_step(self) -> dict[str, float]:
        """Lines 9-12 of Algorithm 1: dual learning over every view-pair.

        With a parallel runtime each pair draws from its own
        ``pair_rng(seed, pair_index, step)`` stream and view-disjoint
        pairs train on concurrent threads; serially every pair shares the
        model RNG in pair order (the pre-parallel behaviour, bit-exact).
        """
        if self._parallel is not None and self.cross_trainers:
            rngs = [
                pair_rng(self.config.seed, k, self._cross_steps)
                for k in range(len(self.cross_trainers))
            ]
            epoch_losses = self._parallel.train_pairs(
                self.cross_trainers, rngs
            )
        else:
            epoch_losses = [
                trainer.train_epoch() for trainer in self.cross_trainers
            ]
        self._cross_steps += 1
        trained = [e for e in epoch_losses if e.num_paths > 0]
        if not trained:
            return {}
        translation = float(np.mean([e.translation for e in trained]))
        reconstruction = float(np.mean([e.reconstruction for e in trained]))
        self.history.translation.append(translation)
        self.history.reconstruction.append(reconstruction)
        return {"translation": translation, "reconstruction": reconstruction}

    # ------------------------------------------------------------------
    # checkpoint protocol
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Snapshot of everything :meth:`fit` mutates — restoring it and
        re-running from the same epoch reproduces an uninterrupted run
        bit for bit.

        Covers the shared RNG stream, the view-specific embedding
        matrices (saved once here; the single- and cross-view trainers
        share them by reference and exclude them from their own states),
        every trainer's optimizer moments and auxiliary matrices, the
        phase learning rates, and the loss history.
        """
        return {
            "config": asdict(self.config),
            "rng": copy.deepcopy(self.rng.bit_generator.state),
            "view_embeddings": {
                edge_type: matrix.copy()
                for edge_type, matrix in self.view_embeddings.items()
            },
            "single_view": {
                trainer.view.edge_type: trainer.state_dict()
                for trainer in self.single_trainers
            },
            "cross_view": {
                "|".join(trainer.pair.key): trainer.state_dict()
                for trainer in self.cross_trainers
            },
            "phase_lrs": {
                phase.name: float(phase.lr) for phase in self._phases
            },
            "cross_steps": self._cross_steps,
            "history": {
                "single_view": list(self.history.single_view),
                "translation": list(self.history.translation),
                "reconstruction": list(self.history.reconstruction),
            },
            "fitted": self._fitted,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot in place.

        The snapshot's config must match this model's on every
        trajectory-defining field (dimensions, rates, walk policy, seed,
        ablation switches); run-control fields (``num_iterations``,
        ``checkpoint_every``, ``health_policy``) may differ — resuming
        with more iterations or a different guard policy is the point of
        checkpointing.
        """
        ours, theirs = asdict(self.config), state["config"]
        mismatched = sorted(
            name
            for name in ours
            if name not in _RESUME_EXEMPT_CONFIG_FIELDS
            and theirs.get(name, ours[name]) != ours[name]
        )
        if mismatched:
            detail = ", ".join(
                f"{name}: checkpoint={theirs[name]!r} model={ours[name]!r}"
                for name in mismatched
            )
            raise ValueError(
                f"checkpoint config does not match the model ({detail}); "
                "resume with the configuration the run was started with"
            )

        saved_views = state["view_embeddings"]
        if set(saved_views) != set(self.view_embeddings):
            raise ValueError(
                f"checkpoint views {sorted(saved_views)} != model views "
                f"{sorted(self.view_embeddings)}"
            )
        for edge_type, matrix in self.view_embeddings.items():
            saved = saved_views[edge_type]
            if saved.shape != matrix.shape:
                raise ValueError(
                    f"view {edge_type!r}: checkpoint shape {saved.shape} "
                    f"!= model shape {matrix.shape}"
                )
            # in place: the trainers hold references to these matrices
            matrix[:] = saved

        for trainer in self.single_trainers:
            trainer.load_state_dict(state["single_view"][trainer.view.edge_type])
        for trainer in self.cross_trainers:
            trainer.load_state_dict(state["cross_view"]["|".join(trainer.pair.key)])

        # all components share this generator by reference, so restoring
        # its state in place resumes every consumer's stream at once
        self.rng.bit_generator.state = copy.deepcopy(state["rng"])

        for phase in self._phases:
            saved_lr = state["phase_lrs"][phase.name]
            if isinstance(phase, _CrossViewPhase):
                # the trainer optimizer rates were just restored directly;
                # only the phase's record needs updating
                phase._set_lr_silently(saved_lr)
            else:
                phase.lr = saved_lr

        # pre-parallel checkpoints lack the clock; 0 matches their serial
        # path, which never reads it
        self._cross_steps = int(state.get("cross_steps", 0))

        history = state["history"]
        self.history.single_view[:] = history["single_view"]
        self.history.translation[:] = history["translation"]
        self.history.reconstruction[:] = history["reconstruction"]
        self._fitted = bool(state["fitted"])

    @staticmethod
    def _as_manager(
        checkpoint: "CheckpointManager | str | Path | None",
    ) -> CheckpointManager | None:
        if checkpoint is None or isinstance(checkpoint, CheckpointManager):
            return checkpoint
        return CheckpointManager(Path(checkpoint))

    def fit(
        self,
        num_iterations: int | None = None,
        callbacks: list[Callback] | tuple[Callback, ...] = (),
        checkpoint: "CheckpointManager | str | Path | None" = None,
        resume: bool = False,
        report: "str | Path | None" = None,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        trace_memory: bool = False,
    ) -> TrainingHistory:
        """Run Algorithm 1 for K iterations; returns the loss history.

        The alternating loop runs as a :class:`repro.engine.TrainingLoop`
        with a ``single_view`` phase and (when view-pairs exist) a
        ``cross_view`` phase, so per-iteration losses and per-phase
        wall-clock timings are observable through engine ``callbacks``
        (e.g. :class:`repro.engine.ProgressReporter` or
        :class:`repro.engine.EarlyStopping`); cumulative timings land in
        :attr:`timings` and the full result in :attr:`last_run`.

        Fault tolerance (infrastructure around Algorithm 1, see
        docs/fault_tolerance.md):

        - ``checkpoint``: a directory (or ready
          :class:`repro.engine.CheckpointManager`) to snapshot into every
          ``config.checkpoint_every`` iterations and at the end of the
          run, atomically and with integrity checks.
        - ``resume=True``: load the newest valid checkpoint from
          ``checkpoint`` and continue from the iteration after it —
          bit-identical to a run that was never interrupted.  A missing
          or empty checkpoint directory falls back to a fresh start.
        - ``config.health_policy``: when set, a
          :class:`repro.engine.NumericalHealthGuard` with that policy
          watches every iteration's losses and parameters.

        Observability (see docs/observability.md):

        - ``report``: path of a versioned JSON run report to write when
          the run finishes — per-phase loss series and timings, per-view
          single-view losses, per-direction translation/reconstruction
          losses (Eq. 11-14), gradient norms, negative-sampling stats,
          and the run → epoch → phase span tree.
        - ``metrics`` / ``tracer``: supply your own registry/tracer
          instead of the ones ``report`` would create (also enables
          collection without writing a file).
        - ``trace_memory``: include ``tracemalloc`` peaks in the spans
          (costs roughly 2x on allocation-heavy code; off by default).

        With none of these set the observability layer is the no-op
        :data:`repro.engine.NULL_REGISTRY` path and costs nothing.

        Calling :meth:`fit` again continues training from the current
        state (useful for convergence studies).
        """
        iterations = (
            num_iterations
            if num_iterations is not None
            else self.config.num_iterations
        )
        manager = self._as_manager(checkpoint)
        if resume and manager is None:
            raise ValueError(
                "resume=True needs a checkpoint directory or manager"
            )

        # the relation balancer feeds on recorded per-view losses, so it
        # forces the metrics registry on even without a report request
        balancing = (
            self.config.resolved_walk_policy == "relation-balanced"
            and self.config.balance_strength > 0
            and len(self.single_trainers) > 1
        )
        # an armed fault injector (--chaos / a chaos test) forces metrics
        # on too: its faults/* incidents must reach the run report
        chaos = faults.get_active()
        observing = (
            report is not None
            or metrics is not None
            or balancing
            or chaos is not None
        )
        if observing and metrics is None:
            metrics = MetricsRegistry()
        owns_tracer = observing and tracer is None
        if owns_tracer:
            tracer = Tracer(trace_memory=trace_memory)
        if observing:
            for trainer in self.single_trainers:
                trainer.bind_metrics(metrics)
            for trainer in self.cross_trainers:
                trainer.bind_metrics(metrics)
            if self._parallel is not None:
                self._parallel.bind_metrics(metrics)
            if chaos is not None:
                chaos.bind_metrics(metrics)

        engine_callbacks: list[Callback] = []
        if balancing:
            engine_callbacks.append(
                RelationBalancer(
                    self.single_trainers,
                    strength=self.config.balance_strength,
                )
            )
        if self.config.health_policy is not None:
            engine_callbacks.append(
                NumericalHealthGuard(
                    policy=self.config.health_policy, state_provider=self
                )
            )

        start_epoch = 0
        loop_state: dict | None = None
        if resume:
            loaded = manager.load_latest()
            if loaded is not None:
                self.load_state_dict(loaded.state["model"])
                loop_state = loaded.state["loop"]
                start_epoch = int(loop_state["epochs_completed"])
                if start_epoch > iterations:
                    raise ValueError(
                        f"checkpoint already covers {start_epoch} iterations "
                        f"but only {iterations} were requested; raise "
                        "num_iterations to continue the run"
                    )

        if manager is not None:
            # the guard sits before the checkpointer so a poisoned epoch is
            # rolled back before it can be persisted
            engine_callbacks.append(
                Checkpointer(manager, self, every=self.config.checkpoint_every)
            )

        loop = TrainingLoop(
            self._phases,
            callbacks=(*engine_callbacks, *callbacks),
            metrics=metrics,
            tracer=tracer,
        )
        if loop_state is not None:
            loop.load_state_dict(loop_state)
        try:
            self.last_run = loop.run(iterations, start_epoch=start_epoch)
        finally:
            if owns_tracer:
                tracer.close()
        # the restored loop state carries the pre-interruption totals; count
        # only the seconds this call actually spent
        restored = dict(loop_state["timings"]) if loop_state else {}
        for name, seconds in self.last_run.timings.items():
            new_seconds = seconds - restored.get(name, 0.0)
            self.timings[name] = self.timings.get(name, 0.0) + new_seconds
        self._fitted = True
        if report is not None:
            RunReport(
                metrics,
                tracer,
                metadata={
                    "model": "transn",
                    "config": asdict(self.config),
                    "graph": {
                        "num_nodes": self.graph.num_nodes,
                        "num_edges": self.graph.num_edges,
                        "num_views": len(self.views),
                        "num_view_pairs": len(self.view_pairs),
                    },
                    "epochs_run": self.last_run.epochs_run,
                },
            ).write(report)
        return self.history

    # ------------------------------------------------------------------
    # embeddings
    # ------------------------------------------------------------------
    def view_specific_embedding(self, node: NodeId, edge_type: str) -> np.ndarray:
        """The embedding of ``node`` inside the view of ``edge_type``."""
        view = next(v for v in self.views if v.edge_type == edge_type)
        if not view.graph.has_node(node):
            raise KeyError(f"node {node!r} does not appear in view {edge_type!r}")
        return self.view_embeddings[edge_type][view.graph.index_of(node)].copy()

    def embedding(self, node: NodeId) -> np.ndarray:
        """Final embedding of ``node``.

        With ``view_weighting="uniform"`` (the paper, Section III-C) this
        is the plain average of the node's view-specific embeddings; with
        ``"degree"`` (extension) each view is weighted by the node's
        degree inside it, down-weighting views where the node is
        peripheral.

        Nodes isolated in the training graph (possible after edge removal
        in link prediction) get the zero vector.
        """
        if not self.graph.has_node(node):
            raise KeyError(f"unknown node {node!r}")
        vectors = []
        weights = []
        for view in self.views:
            if view.graph.has_node(node):
                matrix = self.view_embeddings[view.edge_type]
                vectors.append(matrix[view.graph.index_of(node)])
                if self.config.view_weighting == "degree":
                    weights.append(float(view.graph.degree(node)))
                else:
                    weights.append(1.0)
        dtype = self.config.resolved_dtype
        if not vectors:
            return np.zeros(self.config.dim, dtype=dtype)
        weight_total = sum(weights)
        if weight_total <= 0:
            # np.average/np.mean upcast through their float64 weights
            return np.mean(vectors, axis=0).astype(dtype, copy=False)
        return np.average(vectors, axis=0, weights=weights).astype(
            dtype, copy=False
        )

    def embeddings(self) -> dict[NodeId, np.ndarray]:
        """Final embeddings for every node of the input graph."""
        return {node: self.embedding(node) for node in self.graph.nodes}

    def embedding_matrix(self, nodes: list[NodeId] | None = None) -> np.ndarray:
        """Embeddings stacked into an (n, d) matrix, rows following
        ``nodes`` (default: ``graph.nodes`` order)."""
        nodes = list(nodes) if nodes is not None else list(self.graph.nodes)
        return np.vstack([self.embedding(node) for node in nodes])

    def fit_transform(self) -> dict[NodeId, np.ndarray]:
        """``fit()`` followed by :meth:`embeddings`."""
        self.fit()
        return self.embeddings()
