"""TransN hyper-parameters and ablation switches."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.walks.policies import POLICY_NAMES


@dataclass(frozen=True)
class TransNConfig:
    """Everything Algorithm 1 needs, plus the Table V ablation switches.

    Scale note: the paper runs d=128, walk length 80, walks/node in
    [10, 32], H=6 encoders.  The defaults here are scaled down (see
    DESIGN.md §5) so the full benchmark sweep finishes on a laptop; every
    benchmark prints both settings.

    Attributes:
        dim: embedding dimensionality d.
        walk_length: nodes per sampled walk (paper: 80).
        walk_floor / walk_cap: the per-node walk-count policy
            ``max(min(degree, cap), floor)`` (paper: 10 / 32).
        num_iterations: outer iterations K of Algorithm 1.
        lr_single: SGD learning rate of the skip-gram updates.
        lr_cross: Adam learning rate of the translator parameters.
        lr_cross_embeddings: Adam learning rate of the common-node
            embedding rows updated by the cross-view algorithm (Theta_cross
            includes both; a higher embedding rate strengthens the
            cross-view alignment of view spaces, which the final averaging
            of Section III-C depends on).  The default is tuned for the
            batched one-step-per-direction regime, where common nodes
            receive one aggregated RowAdam step per direction per epoch
            instead of one per chunk (DESIGN.md §2).
        num_negatives: negative samples per skip-gram pair.
        num_encoders: encoders H per translator (paper: 6).
        cross_path_len: fixed path length fed to translators after
            common-node filtering (chunks; see
            :func:`repro.walks.corpus.chunk_paths`).
        cross_paths_per_pair: pairs of paths T sampled per view-pair per
            iteration.
        batch_size: skip-gram minibatch size.

        walk_policy: the per-view walk strategy (``docs/walk_policies.md``):
            "biased" (the paper's Eqs. 6-7, default), "uniform",
            "node2vec", "het-node2vec", "metapath", "spacey", or
            "relation-balanced" (biased walks + the BHIN2vec-style
            :class:`repro.engine.RelationBalancer` reweighting per-view
            training shares from recorded per-view losses).
        walk_p / walk_q: node2vec return/in-out parameters (node2vec and
            het-node2vec policies only).
        type_switch: het-node2vec cross-type transition factor (> 1 pushes
            walks across node-type boundaries).
        balance_strength: exponent of the relation-balanced walk-share
            update (0 disables rebalancing).

        use_cross_view: Table V "TransN-Without-Cross-View" when False.
        simple_walk: Table V "TransN-With-Simple-Walk" when True
            (uniform, weight-blind walks) — shorthand for
            ``walk_policy="uniform"``, kept for the ablation presets.
        simple_translator: Table V "TransN-With-Simple-Translator" when
            True (a single feed-forward layer per translator).
        use_translation_tasks: Table V "TransN-Without-Translation-Tasks"
            when False.
        use_reconstruction_tasks: Table V
            "TransN-Without-Reconstruction-Tasks" when False.
        normalize_similarity: cosine-normalized similarity losses (the
            well-posed reading of Eqs. 11-14; see DESIGN.md §2).  False
            gives the literal unnormalized inner product, kept for the
            design-ablation bench.
        batched_cross_view: process all cross-view chunks of a direction
            in one 3-D forward/backward with one Adam step per direction
            per epoch (the minibatch reading of Algorithm 1, DESIGN.md
            §2).  False keeps the per-chunk reference path: one autograd
            graph and one optimizer step per chunk.
        view_weighting: how a node's view-specific embeddings combine
            into its final embedding.  "uniform" is the paper's equal
            average (Section III-C); "degree" — an extension beyond the
            paper — weights each view by the node's degree in it, so a
            view where the node is peripheral contributes less.
        checkpoint_every: snapshot period (in outer iterations) used by
            :meth:`repro.core.TransN.fit` when a checkpoint directory is
            given.  Training infrastructure, not part of Algorithm 1.
        health_policy: when set, :meth:`repro.core.TransN.fit` attaches a
            :class:`repro.engine.NumericalHealthGuard` with this policy
            ("raise", "rollback", or "skip"); ``None`` disables the
            guard.  Training infrastructure, not part of Algorithm 1.
        workers: corpus-generation worker processes (0 = the serial
            path, bit-identical to the pre-parallel implementation).
            Any ``workers >= 1`` builds corpora through the
            :class:`repro.engine.ParallelRuntime` (shared-memory CSR +
            process pool) and trains view-disjoint cross-view pairs
            concurrently; results are deterministic for a fixed worker
            count but follow a different random stream than ``workers=0``
            (``docs/parallelism.md``).  Training infrastructure, not
            part of Algorithm 1.
        prefetch: overlap next-epoch corpus generation with the current
            epoch's training (needs ``workers >= 1``).  ``None`` (the
            default) enables prefetch whenever workers are on and the
            walk policy is not relation-balanced — under balancing a
            prefetched corpus would use a one-epoch-stale walk share,
            so it must be opted into explicitly with ``True``.
        stream_corpus: generate each view's corpus as fixed-size walk
            blocks consumed immediately (``docs/performance.md``): peak
            memory is bounded by the block size instead of the corpus.
            With ``workers=0`` and a single block per epoch (the default
            when no budget forces smaller blocks) the batch stream is
            bit-identical to the dense path; under a budget or with
            workers the stream is deterministic but its own.  Training
            infrastructure, not part of Algorithm 1.
        corpus_budget_mb: hard peak-memory budget (MiB) for the
            streaming data path; block sizes are derived from it
            (:func:`repro.engine.block_walks_for_budget`) and the
            pipeline raises if a block would exceed it.  Needs
            ``stream_corpus=True``.
        spill_dir: directory for on-disk corpus spill files.  The first
            corpus draw of each view is appended block-by-block to
            ``<spill_dir>/view<code>.spill``; later draws mmap-replay
            the file instead of re-walking the graph.  Needs
            ``stream_corpus=True``; conflicts with the
            relation-balanced policy (its per-epoch walk shares need
            fresh draws).
        on_spill_error: "degrade" (default) survives a corrupt,
            truncated, or unwritable spill file — the incident lands in
            the run report (``spill/degraded``), replay is disabled for
            the run, and the recorded draw is regenerated from seeds
            captured at record time (``docs/fault_tolerance.md``);
            "raise" propagates the error instead.
        shard_timeout: per-shard watchdog deadline (seconds) for
            parallel corpus builds.  A shard outliving it is treated as
            hung: the pool is killed and the remaining shards replay
            in-process with the same seeds (bit-identical output), then
            the pool is relaunched under backoff.  ``None`` (default)
            disables the watchdog.  Needs ``workers >= 1``.
        dtype: "float64" (default; the determinism-golden layout) or
            "float32" — halves embedding, translator, and Adam-moment
            memory at a documented loss tolerance.
        seed: RNG seed for all randomness in the model.
    """

    dim: int = 32
    walk_length: int = 20
    walk_floor: int = 3
    walk_cap: int = 8
    num_iterations: int = 6
    lr_single: float = 0.08
    lr_cross: float = 0.01
    lr_cross_embeddings: float = 0.05
    num_negatives: int = 5
    num_encoders: int = 2
    cross_path_len: int = 6
    cross_paths_per_pair: int = 80
    batch_size: int = 256

    walk_policy: str = "biased"
    walk_p: float = 1.0
    walk_q: float = 1.0
    type_switch: float = 2.0
    balance_strength: float = 1.0

    use_cross_view: bool = True
    simple_walk: bool = False
    simple_translator: bool = False
    use_translation_tasks: bool = True
    use_reconstruction_tasks: bool = True
    normalize_similarity: bool = True
    batched_cross_view: bool = True
    view_weighting: str = "uniform"

    checkpoint_every: int = 1
    health_policy: str | None = None
    workers: int = 0
    prefetch: bool | None = None

    stream_corpus: bool = False
    corpus_budget_mb: float | None = None
    spill_dir: str | None = None
    on_spill_error: str = "degrade"
    shard_timeout: float | None = None
    dtype: str = "float64"

    seed: int = 0

    def __post_init__(self) -> None:
        # every constraint names the offending field and its value so a
        # bad sweep/CLI configuration fails at construction, not epochs in
        def require(condition: bool, field_name: str, rule: str) -> None:
            if not condition:
                raise ValueError(
                    f"TransNConfig.{field_name} {rule}, "
                    f"got {getattr(self, field_name)!r}"
                )

        require(self.dim >= 1, "dim", "must be >= 1")
        require(self.walk_length >= 2, "walk_length", "must be >= 2")
        require(self.walk_floor >= 1, "walk_floor", "must be >= 1")
        require(
            self.walk_cap >= self.walk_floor,
            "walk_cap",
            f"must be >= walk_floor ({self.walk_floor})",
        )
        require(self.num_iterations >= 1, "num_iterations", "must be >= 1")
        require(self.lr_single > 0, "lr_single", "must be > 0")
        require(self.lr_cross > 0, "lr_cross", "must be > 0")
        require(
            self.lr_cross_embeddings > 0, "lr_cross_embeddings", "must be > 0"
        )
        require(self.num_negatives >= 1, "num_negatives", "must be >= 1")
        require(self.num_encoders >= 1, "num_encoders", "must be >= 1")
        require(self.cross_path_len >= 2, "cross_path_len", "must be >= 2")
        require(
            self.cross_paths_per_pair >= 1,
            "cross_paths_per_pair",
            "must be >= 1",
        )
        require(self.batch_size >= 1, "batch_size", "must be >= 1")
        require(self.checkpoint_every >= 1, "checkpoint_every", "must be >= 1")
        require(self.workers >= 0, "workers", "must be >= 0")
        if self.prefetch and self.workers < 1:
            raise ValueError(
                "prefetch=True needs workers >= 1 (the background build "
                f"runs on the worker pool), got workers={self.workers}"
            )
        if self.dtype not in ("float32", "float64"):
            raise ValueError(
                f"unknown dtype {self.dtype!r}; "
                "expected 'float32' or 'float64'"
            )
        if self.corpus_budget_mb is not None:
            require(
                self.corpus_budget_mb > 0,
                "corpus_budget_mb",
                "must be > 0",
            )
            if not self.stream_corpus:
                raise ValueError(
                    "corpus_budget_mb bounds the streaming data path and "
                    "needs stream_corpus=True"
                )
        if self.spill_dir is not None:
            if not self.stream_corpus:
                raise ValueError(
                    "spill_dir replays streamed corpus blocks and needs "
                    "stream_corpus=True"
                )
            if self.walk_policy == "relation-balanced":
                raise ValueError(
                    "spill_dir conflicts with walk_policy="
                    "'relation-balanced': replayed corpora would ignore "
                    "the per-epoch walk shares"
                )
        if self.on_spill_error not in ("degrade", "raise"):
            raise ValueError(
                f"unknown on_spill_error {self.on_spill_error!r}; "
                "expected 'degrade' or 'raise'"
            )
        if self.shard_timeout is not None:
            require(self.shard_timeout > 0, "shard_timeout", "must be > 0")
            if self.workers < 1:
                raise ValueError(
                    "shard_timeout watches parallel corpus shards and "
                    f"needs workers >= 1, got workers={self.workers}"
                )
        if self.stream_corpus and self.prefetch:
            raise ValueError(
                "prefetch=True double-buffers whole corpora and conflicts "
                "with stream_corpus=True (blocks already overlap work); "
                "leave prefetch unset"
            )
        if self.walk_policy not in POLICY_NAMES:
            raise ValueError(
                f"unknown walk_policy {self.walk_policy!r}; "
                f"choose from {POLICY_NAMES}"
            )
        require(self.walk_p > 0, "walk_p", "must be > 0")
        require(self.walk_q > 0, "walk_q", "must be > 0")
        require(self.type_switch > 0, "type_switch", "must be > 0")
        require(
            self.balance_strength >= 0, "balance_strength", "must be >= 0"
        )
        if self.simple_walk and self.walk_policy not in ("biased", "uniform"):
            raise ValueError(
                "simple_walk=True forces uniform walks and conflicts with "
                f"walk_policy={self.walk_policy!r}; set one or the other"
            )
        if self.view_weighting not in ("uniform", "degree"):
            raise ValueError(
                f"unknown view_weighting {self.view_weighting!r}; "
                "expected 'uniform' or 'degree'"
            )
        if self.health_policy not in (None, "raise", "rollback", "skip"):
            raise ValueError(
                f"unknown health_policy {self.health_policy!r}; "
                "expected None, 'raise', 'rollback', or 'skip'"
            )
        if not (self.use_translation_tasks or self.use_reconstruction_tasks):
            if self.use_cross_view:
                raise ValueError(
                    "cross-view training needs at least one of the "
                    "translation/reconstruction tasks enabled"
                )

    @property
    def resolved_walk_policy(self) -> str:
        """The effective policy name (``simple_walk`` wins as "uniform")."""
        return "uniform" if self.simple_walk else self.walk_policy

    @property
    def resolved_dtype(self):
        """The numpy dtype every trainable array is allocated in."""
        import numpy as np

        return np.dtype(self.dtype)

    @property
    def corpus_budget_bytes(self) -> int | None:
        """``corpus_budget_mb`` in bytes (``None`` when unset)."""
        if self.corpus_budget_mb is None:
            return None
        return int(self.corpus_budget_mb * 1024 * 1024)

    # ------------------------------------------------------------------
    # Table V presets
    # ------------------------------------------------------------------
    def without_cross_view(self) -> "TransNConfig":
        return replace(self, use_cross_view=False)

    def with_simple_walk(self) -> "TransNConfig":
        return replace(self, simple_walk=True)

    def with_simple_translator(self) -> "TransNConfig":
        return replace(self, simple_translator=True)

    def without_translation_tasks(self) -> "TransNConfig":
        return replace(self, use_translation_tasks=False)

    def without_reconstruction_tasks(self) -> "TransNConfig":
        return replace(self, use_reconstruction_tasks=False)

    @staticmethod
    def paper_scale() -> "TransNConfig":
        """The parameters of Section IV-A3, as published."""
        return TransNConfig(
            dim=128,
            walk_length=80,
            walk_floor=10,
            walk_cap=32,
            num_encoders=6,
            lr_single=0.025,
        )
