"""TransN — the paper's primary contribution.

- :class:`~repro.core.config.TransNConfig` — hyper-parameters plus the
  Table V ablation switches.
- :class:`~repro.core.single_view.SingleViewTrainer` — Section III-A.
- :class:`~repro.core.translator.Translator` /
  :class:`~repro.core.cross_view.CrossViewTrainer` — Section III-B.
- :class:`~repro.core.model.TransN` — Algorithm 1 end to end.
"""

from repro.core.config import TransNConfig
from repro.core.cross_view import CrossViewTrainer, RowAdam, similarity_loss
from repro.core.model import TrainingHistory, TransN
from repro.core.single_view import SingleViewTrainer
from repro.core.translator import SimpleTranslator, Translator, make_translator

__all__ = [
    "TransN",
    "TransNConfig",
    "TrainingHistory",
    "SingleViewTrainer",
    "CrossViewTrainer",
    "Translator",
    "SimpleTranslator",
    "make_translator",
    "RowAdam",
    "similarity_loss",
]
