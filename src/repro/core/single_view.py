"""The single-view algorithm (Section III-A).

Per view: sample biased correlated random walks, extract context pairs
under the Definition-6 window (1 on homo-views, 2 on heter-views), and
run skip-gram-with-negative-sampling SGD steps on the view-specific
embedding matrix.  Batching and negative sampling go through the shared
:class:`repro.engine.CorpusPipeline`.
"""

from __future__ import annotations

import copy
from pathlib import Path
from typing import Iterator

from repro.engine import CorpusPipeline, StreamingCorpusPipeline
from repro.engine.observability import NULL_REGISTRY, MetricsRegistry
from repro.engine.parallel import (
    ParallelRuntime,
    PrefetchingSampler,
    single_view_seed,
)
from repro.engine.pipeline import block_walks_for_budget
from repro.graph.views import View
from repro.skipgram import SkipGramTrainer, window_for_view
from repro.walks import (
    BiasedCorrelatedPolicy,
    LockstepWalker,
    UniformPolicy,
    WalkPolicy,
    build_corpus,
)
from repro.walks.corpus import (
    WalkCorpus,
    corpus_index_dtype,
    stream_corpus as stream_walk_corpus,
)
from repro.walks.spill import SpillFormatError, SpillReader, SpillWriter

import numpy as np

#: streaming block size when no byte budget derives one — small enough to
#: bound memory on big views, large enough that the goldens' toy corpora
#: fit in a single block (where streaming is bit-identical to dense)
DEFAULT_BLOCK_WALKS = 8192


class SingleViewTrainer:
    """Owns one view's walks, batch pipeline, and SGNS updates.

    Args:
        view: the view to train on.
        embeddings: the view-specific embedding matrix, shape
            (view.num_nodes, dim), indexed by ``view.graph.index_of``;
            shared with the cross-view trainer and updated in place.
        simple_walk: use uniform weight-blind walks (Table V ablation);
            ignored when ``policy`` is given.
        policy: an explicit :class:`repro.walks.WalkPolicy` instance for
            this view (the pluggable strategy layer); ``None`` selects
            the paper's biased-correlated walk (or uniform under
            ``simple_walk``).
        walk_length / walk_floor / walk_cap: corpus parameters.
        num_negatives: negatives per positive pair.
        batch_size: SGD minibatch size.
        rng: the model's random source.
        optimizer: row optimizer of the SGNS matrices (``"sgd"`` is the
            paper-faithful word2vec update; ``"adam"`` is the engine
            extension).
        parallel: a :class:`repro.engine.ParallelRuntime` to build
            corpora on (``None`` keeps the serial path bit-identical to
            the pre-parallel implementation).
        prefetch: overlap the next corpus build with training (needs
            ``parallel``).
        seed / view_code: key the deterministic per-draw seed stream of
            the parallel path (``single_view_seed(seed, view_code, t)``);
            unused when ``parallel`` is ``None``.
        stream_corpus: consume the corpus as fixed-size walk blocks
            through a :class:`repro.engine.StreamingCorpusPipeline`
            instead of materializing it (``docs/performance.md``).
            Incompatible with ``prefetch`` (blocks already bound the
            resident set; double-buffering would re-materialize it).
        corpus_budget_bytes: hard peak-memory budget for the streaming
            data path; sizes blocks via
            :func:`repro.engine.block_walks_for_budget`.  Without it,
            blocks hold :data:`DEFAULT_BLOCK_WALKS` walks.
        spill_path: corpus spill file.  When the file exists it is
            mmap-replayed instead of walking the view; otherwise the
            next draw's blocks are recorded to it (atomically — a
            half-written draw leaves no file).  Streaming only.
        on_spill_error: ``"degrade"`` (default) survives a corrupt,
            truncated, or unwritable spill — the incident is recorded
            (``spill/degraded`` counter + event), the spill is disabled
            for the rest of the run, and each epoch regenerates the
            recorded draw from state captured at record time (parallel:
            the draw's seed sequence, so the walks are bit-identical to
            the lost file; serial: the pre-draw RNG state restored into
            an isolated generator, exact for single-block draws).
            ``"raise"`` propagates the error instead.
    """

    def __init__(
        self,
        view: View,
        embeddings: np.ndarray,
        rng: np.random.Generator,
        walk_length: int = 20,
        walk_floor: int = 3,
        walk_cap: int = 8,
        num_negatives: int = 5,
        batch_size: int = 256,
        simple_walk: bool = False,
        optimizer: str = "sgd",
        policy: WalkPolicy | None = None,
        parallel: ParallelRuntime | None = None,
        prefetch: bool = False,
        seed: int = 0,
        view_code: int = 0,
        stream_corpus: bool = False,
        corpus_budget_bytes: int | None = None,
        spill_path: str | Path | None = None,
        on_spill_error: str = "degrade",
    ) -> None:
        if on_spill_error not in ("degrade", "raise"):
            raise ValueError(
                f"on_spill_error must be 'degrade' or 'raise', "
                f"got {on_spill_error!r}"
            )
        if embeddings.shape[0] != view.num_nodes:
            raise ValueError(
                f"embedding rows ({embeddings.shape[0]}) != view nodes "
                f"({view.num_nodes})"
            )
        self.view = view
        self.rng = rng
        self.walk_length = walk_length
        self.walk_floor = walk_floor
        self.walk_cap = walk_cap
        self.num_negatives = num_negatives
        self.batch_size = batch_size
        self.window = window_for_view(view)
        if policy is None:
            policy = UniformPolicy() if simple_walk else BiasedCorrelatedPolicy()
        self.policy = policy
        self.walker = LockstepWalker(view, policy, rng=rng)
        self.walk_scale = 1.0  # RelationBalancer's per-view share knob
        self.trainer = SkipGramTrainer(embeddings, rng=rng, optimizer=optimizer)
        self.metrics: MetricsRegistry = NULL_REGISTRY
        self._last_corpus: WalkCorpus | None = None
        self.parallel = parallel
        self.seed = seed
        self.view_code = view_code
        self._draws = 0  # monotonic corpus-draw clock, checkpointed
        self.stream_corpus = bool(stream_corpus)
        self.corpus_budget_bytes = corpus_budget_bytes
        self.spill_path = Path(spill_path) if spill_path is not None else None
        self.on_spill_error = on_spill_error
        self._spill_disabled = False
        #: regeneration state captured at record time (mode + seed/state
        #: + count_scale); lets a degraded run re-derive the lost draw
        self._spill_recording: dict | None = None
        if self.stream_corpus and prefetch:
            raise ValueError(
                "stream_corpus and prefetch are mutually exclusive"
            )
        if self.spill_path is not None and not self.stream_corpus:
            raise ValueError("spill_path needs stream_corpus=True")
        self._prefetcher = (
            PrefetchingSampler(parallel, self._corpus_task)
            if parallel is not None and prefetch
            else None
        )
        if self.stream_corpus:
            self._index_dtype = corpus_index_dtype(view.num_nodes)
            if corpus_budget_bytes is not None:
                self._block_walks = block_walks_for_budget(
                    corpus_budget_bytes,
                    walk_length,
                    self.window,
                    num_negatives,
                    batch_size,
                    itemsize=self._index_dtype.itemsize,
                )
            else:
                self._block_walks = DEFAULT_BLOCK_WALKS
            self.pipeline = StreamingCorpusPipeline(
                sample_blocks=self.sample_blocks,
                num_nodes=view.num_nodes,
                window=self.window,
                num_negatives=num_negatives,
                batch_size=batch_size,
                rng=rng,
                budget_bytes=corpus_budget_bytes,
                noise_dtype=embeddings.dtype,
            )
        else:
            self.pipeline = CorpusPipeline(
                sample_corpus=self.sample_corpus,
                num_nodes=view.num_nodes,
                window=self.window,
                num_negatives=num_negatives,
                batch_size=batch_size,
                rng=rng,
            )

    # ------------------------------------------------------------------
    def sample_corpus(self) -> WalkCorpus:
        """One round of walks under the degree-based count policy.

        Serial without a runtime (the determinism-golden path); with one,
        walks fan out over the worker pool under the per-draw seed
        stream, optionally taken from the prefetcher's double buffer.
        The corpus is kept around so :meth:`evaluate_loss` can score
        monitoring pairs without resampling the whole view.
        """
        if self.parallel is None:
            self._last_corpus = build_corpus(
                self.view,
                self.walker,
                length=self.walk_length,
                floor=self.walk_floor,
                cap=self.walk_cap,
                rng=self.rng,
                count_scale=self.walk_scale,
            )
        elif self._prefetcher is not None:
            self._last_corpus = self._prefetcher.corpus(self._draws)
            self._draws += 1
        else:
            self._last_corpus = self._corpus_task(self._draws)()
            self._draws += 1
        return self._last_corpus

    def _corpus_task(self, draw: int):
        """A zero-arg builder of draw ``draw``'s corpus.

        Called on the training thread at schedule time, so the balancer's
        current ``walk_scale`` is captured here — the returned closure
        reads no trainer state and can run on a prefetch thread.
        """
        count_scale = self.walk_scale
        seed_seq = single_view_seed(self.seed, self.view_code, draw)

        def build() -> WalkCorpus:
            return self.parallel.build_corpus(
                self.view,
                self.policy,
                length=self.walk_length,
                floor=self.walk_floor,
                cap=self.walk_cap,
                count_scale=count_scale,
                seed_seq=seed_seq,
                label=f"single_view/{self.view.edge_type}",
            )

        return build

    # ------------------------------------------------------------------
    # streaming corpus path
    # ------------------------------------------------------------------
    def sample_blocks(self) -> Iterator[WalkCorpus]:
        """One corpus draw as a lazy stream of walk blocks.

        Serial (``parallel=None``): blocks come off the shared trainer
        RNG in the dense path's exact consumption order, so a draw that
        fits one block is bit-identical to :meth:`sample_corpus`.  With
        a runtime, blocks derive from the per-draw seed stream — a
        deterministic stream of its own (``docs/parallelism.md``).

        With a :attr:`spill_path`, an existing file is CRC-verified and
        mmap-replayed (no walking, no RNG consumption); otherwise this
        draw is recorded to it while streaming through.  Under
        ``on_spill_error="degrade"`` a corrupt or unwritable spill never
        aborts the run — see :meth:`_regenerate_blocks`.
        """
        if self._spill_disabled:
            return self._track_last(self._regenerate_blocks())
        if self.spill_path is not None and self.spill_path.exists():
            reader = self._open_replay()
            if reader is None:  # degraded: _spill_incident already logged
                return self._track_last(self._regenerate_blocks())
            return self._track_last(self._replay_blocks(reader))
        recording = self.spill_path is not None
        if self.parallel is None:
            if recording:
                # captured *before* any draw: restoring this state into an
                # isolated generator re-derives the recorded walks without
                # consuming self.rng (replay consumes nothing either)
                self._spill_recording = {
                    "mode": "serial",
                    "state": copy.deepcopy(self.rng.bit_generator.state),
                    "count_scale": self.walk_scale,
                }
            blocks = stream_walk_corpus(
                self.view,
                self.walker,
                length=self.walk_length,
                floor=self.walk_floor,
                cap=self.walk_cap,
                rng=self.rng,
                count_scale=self.walk_scale,
                block_walks=self._block_walks,
                index_dtype=self._index_dtype,
            )
        else:
            seed_seq = single_view_seed(self.seed, self.view_code, self._draws)
            self._draws += 1
            if recording:
                self._spill_recording = {
                    "mode": "parallel",
                    "seed_seq": seed_seq,
                    "count_scale": self.walk_scale,
                }
            blocks = self.parallel.stream_corpus(
                self.view,
                self.policy,
                length=self.walk_length,
                block_walks=self._block_walks,
                floor=self.walk_floor,
                cap=self.walk_cap,
                count_scale=self.walk_scale,
                seed_seq=seed_seq,
                index_dtype=self._index_dtype,
                label=f"single_view/{self.view.edge_type}",
            )
        if recording:
            blocks = self._record_blocks(blocks)
        return self._track_last(blocks)

    def _spill_incident(self, stage: str, error: BaseException) -> None:
        """Record a spill failure and disable the spill for this run.

        Under ``on_spill_error="raise"`` the error propagates instead;
        under ``"degrade"`` every later draw goes through
        :meth:`_regenerate_blocks`.
        """
        if self.on_spill_error == "raise":
            raise error
        self._spill_disabled = True
        self.metrics.incident(
            "spill/degraded",
            "spill unusable; replay disabled, regenerating the draw",
            view=str(self.view.edge_type),
            stage=stage,
            path=str(self.spill_path),
            error=repr(error),
        )

    def _open_replay(self) -> SpillReader | None:
        """Open the spill and CRC-scan every block before replaying.

        Verifying upfront means corruption is found before a single walk
        reaches training (a mid-epoch discovery would force an epoch
        restart); the scan is one sequential CRC pass over the file.
        Returns ``None`` after degrading on any format/IO error.
        """
        reader = None
        try:
            reader = SpillReader(self.spill_path)
            reader.verify()
            return reader
        except (OSError, SpillFormatError) as error:
            if reader is not None:
                reader.close()
            self._spill_incident("replay", error)
            return None

    def _regenerate_blocks(self) -> Iterator[WalkCorpus]:
        """Stand-in for a lost replay: re-derive the recorded draw.

        Parallel mode replays the recorded draw's seed sequence — block
        content is a pure function of it, so the stream is bit-identical
        to the lost file and the whole run matches its fault-free twin.
        Serial mode restores the captured pre-draw RNG state into an
        isolated generator: exact for draws that fit one block (the
        pipeline draws negatives from the shared RNG *between* blocks of
        larger draws, which an isolated replay cannot see).  If nothing
        was captured (the spill predates this process), a fresh draw
        keeps training alive at the cost of determinism vs the recording
        run.
        """
        recording = self._spill_recording
        if recording is None:
            if self.parallel is None:
                yield from stream_walk_corpus(
                    self.view,
                    self.walker,
                    length=self.walk_length,
                    floor=self.walk_floor,
                    cap=self.walk_cap,
                    rng=self.rng,
                    count_scale=self.walk_scale,
                    block_walks=self._block_walks,
                    index_dtype=self._index_dtype,
                )
            else:
                seed_seq = single_view_seed(
                    self.seed, self.view_code, self._draws
                )
                self._draws += 1
                yield from self.parallel.stream_corpus(
                    self.view,
                    self.policy,
                    length=self.walk_length,
                    block_walks=self._block_walks,
                    floor=self.walk_floor,
                    cap=self.walk_cap,
                    count_scale=self.walk_scale,
                    seed_seq=seed_seq,
                    index_dtype=self._index_dtype,
                    label=f"single_view/{self.view.edge_type}",
                )
            return
        if recording["mode"] == "parallel":
            yield from self.parallel.stream_corpus(
                self.view,
                self.policy,
                length=self.walk_length,
                block_walks=self._block_walks,
                floor=self.walk_floor,
                cap=self.walk_cap,
                count_scale=recording["count_scale"],
                seed_seq=recording["seed_seq"],
                index_dtype=self._index_dtype,
                label=f"single_view/{self.view.edge_type}",
            )
            return
        bitgen = type(self.rng.bit_generator)()
        bitgen.state = copy.deepcopy(recording["state"])
        regen_rng = np.random.Generator(bitgen)
        walker = LockstepWalker(self.view, self.policy, rng=regen_rng)
        yield from stream_walk_corpus(
            self.view,
            walker,
            length=self.walk_length,
            floor=self.walk_floor,
            cap=self.walk_cap,
            rng=regen_rng,
            count_scale=recording["count_scale"],
            block_walks=self._block_walks,
            index_dtype=self._index_dtype,
        )

    def _track_last(self, blocks) -> Iterator[WalkCorpus]:
        """Remember the newest block for :meth:`evaluate_loss`."""
        for block in blocks:
            self._last_corpus = block
            yield block

    def _record_blocks(self, blocks) -> Iterator[WalkCorpus]:
        """Tee blocks into the spill file; finalize only on exhaustion.

        An interrupted draw aborts the temp file (also via the writer's
        GC hook when the generator is dropped mid-stream), so a partial
        recording is never replayed.  An ``OSError`` while writing (disk
        full, say) degrades under ``on_spill_error="degrade"``: recording
        stops, the incident is logged, and the draw keeps streaming to
        training untouched — the walks themselves never depended on the
        disk.
        """
        writer = SpillWriter(
            self.spill_path, self.walk_length, self._index_dtype
        )
        try:
            for block in blocks:
                if writer is not None:
                    try:
                        writer.append(block.matrix, block.lengths)
                    except OSError as error:
                        writer.abort()
                        writer = None
                        self._spill_incident("record", error)
                yield block
            if writer is not None:
                try:
                    writer.finalize()
                except OSError as error:
                    writer.abort()
                    writer = None
                    self._spill_incident("record", error)
        except BaseException:
            if writer is not None:
                writer.abort()
            raise

    def _replay_blocks(self, reader: SpillReader) -> Iterator[WalkCorpus]:
        """Stream the spilled corpus back through the kernel page cache."""
        with reader:
            yield from reader.corpora(self.view.graph)

    def bind_metrics(self, metrics: MetricsRegistry) -> None:
        """Route this view's metrics (and the inner SGNS trainer's
        per-batch gradient/negative-sampling stats) into ``metrics``,
        namespaced by the view's edge type."""
        self.metrics = metrics
        self.trainer.metrics = metrics
        self.trainer.metric_prefix = f"single_view/{self.view.edge_type}/"
        self.pipeline.metrics = metrics
        self.pipeline.metric_prefix = f"single_view/{self.view.edge_type}/"

    def train_epoch(self, lr: float) -> float:
        """One pass (lines 4-7 of Algorithm 1): returns the mean SGNS loss."""
        total, batches, pairs = 0.0, 0, 0
        for batch in self.pipeline.epoch():
            total += self.trainer.train_batch(
                batch.centers, batch.contexts, batch.negatives, lr=lr
            )
            batches += 1
            pairs += batch.centers.size
        mean = total / batches if batches else 0.0
        if self.metrics.enabled:
            label = self.view.edge_type
            self.metrics.observe(f"single_view/{label}/loss", mean)
            self.metrics.counter(f"single_view/{label}/batches", batches)
            self.metrics.counter(f"single_view/{label}/pairs", pairs)
        return mean

    # ------------------------------------------------------------------
    # checkpoint protocol
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Everything this trainer mutates during training: the SGNS
        context matrix + optimizer moments, and the pipeline's cached
        noise table.  The view-specific embedding matrix is excluded —
        the model owns it (it is shared with the cross-view trainer) and
        snapshots it once.  The cached monitoring corpus is transient and
        deliberately not saved."""
        return {
            "skipgram": self.trainer.state_dict(),
            "pipeline": self.pipeline.state_dict(),
            "walk_scale": self.walk_scale,
            "corpus_draws": self._draws,
        }

    def load_state_dict(self, state: dict) -> None:
        self.trainer.load_state_dict(state["skipgram"])
        self.pipeline.load_state_dict(state["pipeline"])
        # pre-balancer checkpoints lack the key; the neutral scale is 1
        self.walk_scale = float(state.get("walk_scale", 1.0))
        # pre-parallel checkpoints lack the draw clock; 0 matches their
        # serial path, which never reads it
        self._draws = int(state.get("corpus_draws", 0))
        if self._prefetcher is not None:
            self._prefetcher.reset()  # any in-flight draw is now stale
        self._last_corpus = None

    def _monitoring_corpus(self, num_pairs: int) -> WalkCorpus:
        """A corpus to draw monitoring pairs from — the last training
        epoch's corpus when one exists, otherwise a bounded fresh draw.

        The bounded draw samples just enough walks from random start nodes
        to cover ``num_pairs`` context pairs, instead of resampling the
        entire view under the degree-based count policy (which on large
        views costs as much as a training epoch's sampling).
        """
        if self._last_corpus is not None:
            return self._last_corpus
        num_walks = max(4, -(-num_pairs // self.walk_length))
        starts = self.rng.integers(
            self.view.num_nodes, size=num_walks
        ).astype(np.int64)
        matrix, lengths = self.walker.walk_batch(starts, self.walk_length)
        return WalkCorpus(matrix, lengths, self.walk_length, self.view.graph)

    def evaluate_loss(self, num_pairs: int = 512) -> float:
        """Monitoring loss on a sample of pairs (no updates)."""
        corpus = self._monitoring_corpus(num_pairs)
        centers, contexts = self.pipeline.pairs(corpus)
        if centers.size == 0:
            return 0.0
        take = min(num_pairs, centers.size)
        pick = self.rng.choice(centers.size, size=take, replace=False)
        noise = self.pipeline.noise(corpus)
        negatives = noise.sample(self.rng, size=take * self.num_negatives)
        return self.trainer.loss_batch(
            centers[pick],
            contexts[pick],
            negatives.reshape(take, self.num_negatives),
        )
