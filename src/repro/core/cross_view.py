"""The cross-view algorithm (Section III-B).

For every view-pair the trainer:

1. reduces the pair to its paired-subviews (Definition 5),
2. samples walks from each subview with the Section III-A walker,
3. filters each walk down to the pair's common nodes and re-chunks it to
   the fixed translator path length,
4. runs the two translation tasks T1/T2 (Equations 11-12) and the two
   reconstruction tasks R1/R2 (Equations 13-14) through the translators,
5. back-propagates into both translators *and* the common nodes'
   view-specific embeddings (the parameters Theta_cross of Algorithm 1),
   applying Adam updates to each.

Similarity loss: Equations 11-14 score translated-vs-target paths by the
row-wise inner product.  As recorded in DESIGN.md §2 we minimize
``1 - cosine`` of corresponding rows by default (the well-posed reading);
``normalize=False`` gives the literal unnormalized ``-<a, b>``.

Batching: by default (``batched=True``) the trainer gathers *all* chunks
of a direction into one ``(num_chunks, path_len, d)`` tensor, runs a
single translator forward/backward, and applies **one** translator Adam
step plus one aggregated :class:`RowAdam` update per direction per epoch
— the minibatch reading of Algorithm 1's per-path steps (DESIGN.md §2).
``batched=False`` keeps the per-chunk reference path: one autograd graph
and one optimizer step per chunk, matching the paper's loop literally.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.autograd import Tensor
from repro.autograd.functional import l2_normalize_rows
from repro.engine.observability import NULL_REGISTRY, MetricsRegistry
from repro.graph.heterograph import HeteroGraph
from repro.graph.views import View, ViewPair, paired_subviews
from repro.nn import Adam
from repro.nn.optim import RowAdam, RowOptimizer, gradient_norm, make_row_optimizer
from repro.walks import (
    BiasedCorrelatedPolicy,
    LockstepWalker,
    UniformPolicy,
)
from repro.walks.corpus import WalkCorpus, chunk_paths, filter_to_nodes

from repro.core.translator import make_translator


def _index_map(source: HeteroGraph, target: HeteroGraph) -> np.ndarray:
    """Dense source-index → target-index lookup (-1 where absent).

    Chunks are sampled in a subview's index space; one gather through
    this table re-bases them onto a view's embedding rows.
    """
    return target.indices_of(source.nodes)


def similarity_loss(
    prediction: Tensor, target: Tensor, normalize: bool = True
) -> Tensor:
    """Mean row-similarity loss between two (path_len, d) matrices.

    ``normalize=True``: mean over rows of ``1 - cos(pred_row, target_row)``
    (bounded, scale-free).  ``normalize=False``: mean over rows of
    ``-<pred_row, target_row>`` — the literal sign-fixed Equation 11.

    Also accepts ``(num_chunks, path_len, d)`` batches: rows normalize
    along the last axis and the mean runs over every row of every chunk,
    i.e. the mean over chunks of the per-chunk loss.
    """
    if prediction.shape != target.shape:
        raise ValueError(
            f"shape mismatch: {prediction.shape} vs {target.shape}"
        )
    if normalize:
        prediction = l2_normalize_rows(prediction)
        target = l2_normalize_rows(target)
        inner = (prediction * target).sum(axis=-1)
        return (1.0 - inner).mean()
    return -(prediction * target).sum(axis=-1).mean()


@dataclass
class CrossViewLosses:
    """Per-epoch loss bookkeeping of one view-pair."""

    translation: float = 0.0
    reconstruction: float = 0.0
    num_paths: int = 0

    @property
    def total(self) -> float:
        return self.translation + self.reconstruction


class CrossViewTrainer:
    """Dual-learning trainer of one view-pair eta_{i,j}."""

    def __init__(
        self,
        pair: ViewPair,
        embeddings_i: np.ndarray,
        embeddings_j: np.ndarray,
        rng: np.random.Generator,
        dim: int,
        cross_path_len: int = 6,
        num_encoders: int = 2,
        walk_length: int = 20,
        paths_per_epoch: int = 80,
        lr_cross: float = 0.01,
        lr_cross_embeddings: float | None = None,
        simple_walk: bool = False,
        simple_translator: bool = False,
        use_translation_tasks: bool = True,
        use_reconstruction_tasks: bool = True,
        normalize_similarity: bool = True,
        batched: bool = True,
        policy_factory=None,
    ) -> None:
        if not (use_translation_tasks or use_reconstruction_tasks):
            raise ValueError("at least one cross-view task must be enabled")
        self.pair = pair
        self.rng = rng
        self.dim = dim
        self.cross_path_len = cross_path_len
        self.walk_length = walk_length
        self.paths_per_epoch = paths_per_epoch
        self.use_translation = use_translation_tasks
        self.use_reconstruction = use_reconstruction_tasks
        self.normalize = normalize_similarity
        self.batched = batched

        self.metrics: MetricsRegistry = NULL_REGISTRY
        self._metric_scope = ""  # set per direction while training

        self.sub_i, self.sub_j = paired_subviews(pair)
        # one fresh policy instance per subview (policies bind to one graph)
        if policy_factory is None:
            policy_factory = (
                UniformPolicy if simple_walk else BiasedCorrelatedPolicy
            )
        self._walker_i = LockstepWalker(self.sub_i, policy_factory(), rng=rng)
        self._walker_j = LockstepWalker(self.sub_j, policy_factory(), rng=rng)

        # translators live in the embedding dtype (float32 mode follows
        # the matrices); the RNG draws themselves are dtype-independent
        self.translator_ij = make_translator(
            cross_path_len, dim, num_encoders, simple_translator, rng=rng,
            dtype=embeddings_i.dtype,
        )
        self.translator_ji = make_translator(
            cross_path_len, dim, num_encoders, simple_translator, rng=rng,
            dtype=embeddings_i.dtype,
        )
        params = list(self.translator_ij.parameters()) + list(
            self.translator_ji.parameters()
        )
        self._translator_optim = Adam(params, lr=lr_cross)

        emb_lr = lr_cross_embeddings if lr_cross_embeddings is not None else lr_cross
        self._emb_i = embeddings_i
        self._emb_j = embeddings_j
        self._row_adam_i = make_row_optimizer("adam", embeddings_i, lr=emb_lr)
        self._row_adam_j = make_row_optimizer("adam", embeddings_j, lr=emb_lr)

        # common nodes that survived the subview reduction on both sides
        self._common = sorted(
            pair.common_nodes & self.sub_i.nodes & self.sub_j.nodes,
            key=str,
        )
        # walk-start indices (subview index space) and subview -> view
        # embedding-row lookups; filtered chunks only contain common
        # nodes, which exist on both sides, so the -1 slots of the maps
        # are never gathered.
        self._starts_i = self._start_indices(self.sub_i)
        self._starts_j = self._start_indices(self.sub_j)
        self._map_i_to_i = _index_map(self.sub_i.graph, pair.view_i.graph)
        self._map_i_to_j = _index_map(self.sub_i.graph, pair.view_j.graph)
        self._map_j_to_j = _index_map(self.sub_j.graph, pair.view_j.graph)
        self._map_j_to_i = _index_map(self.sub_j.graph, pair.view_i.graph)

    def _start_indices(self, subview: View) -> np.ndarray:
        indices = subview.graph.indices_of(self._common)
        return indices[indices >= 0]

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    @property
    def pair_label(self) -> str:
        """Stable metric namespace of this view-pair, ``<type_i>+<type_j>``."""
        return f"{self.pair.view_i.edge_type}+{self.pair.view_j.edge_type}"

    def bind_metrics(self, metrics: MetricsRegistry) -> None:
        """Route this pair's per-direction cross-view metrics (Eq. 11-14
        losses, chunk counts, translator gradient norms) into ``metrics``."""
        self.metrics = metrics

    # ------------------------------------------------------------------
    # checkpoint protocol
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Theta_cross minus the shared embedding matrices: both
        translators' parameters, the translator Adam moments, and the
        RowAdam moments of the common-node embedding updates.  The view
        embedding matrices themselves are owned and saved by the model."""
        return {
            "translator_ij": self.translator_ij.state_dict(),
            "translator_ji": self.translator_ji.state_dict(),
            "translator_optim": self._translator_optim.state_dict(),
            "row_adam_i": self._row_adam_i.state_dict(),
            "row_adam_j": self._row_adam_j.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        self.translator_ij.load_state_dict(state["translator_ij"])
        self.translator_ji.load_state_dict(state["translator_ji"])
        self._translator_optim.load_state_dict(state["translator_optim"])
        self._row_adam_i.load_state_dict(state["row_adam_i"])
        self._row_adam_j.load_state_dict(state["row_adam_j"])

    def scale_learning_rates(self, factor: float) -> None:
        """Scale the translator and embedding learning rates together.

        Used by the numerical-health rollback policy: the cross-view
        phase has two coupled rates (translator Adam, common-node
        RowAdam), so "halve the phase's lr" scales both by the same
        factor to preserve their tuned ratio.
        """
        if factor <= 0:
            raise ValueError(f"lr scale factor must be positive, got {factor}")
        self._translator_optim.lr *= factor
        self._row_adam_i.lr *= factor
        self._row_adam_j.lr *= factor

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def _sample_chunks(
        self,
        subview: View,
        walker,
        starts: np.ndarray,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """T lockstep walks from common-node starts -> filter -> chunks.

        Returns a ``(num_chunks, cross_path_len)`` index matrix in the
        subview's index space.  ``rng`` overrides the trainer's own
        stream (the parallel layer passes a per-pair per-step generator).
        """
        if starts.size == 0:
            return np.empty((0, self.cross_path_len), dtype=np.int64)
        rng = self.rng if rng is None else rng
        picks = starts[rng.integers(starts.size, size=self.paths_per_epoch)]
        matrix, lengths = walker.walk_batch(picks, self.walk_length, rng=rng)
        corpus = WalkCorpus(matrix, lengths, self.walk_length, subview.graph)
        corpus = filter_to_nodes(corpus, self._common, min_length=2)
        return chunk_paths(corpus, self.cross_path_len)

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def _train_step(
        self,
        src_rows: np.ndarray,
        tgt_rows: np.ndarray,
        source_emb: np.ndarray,
        target_emb: np.ndarray,
        source_adam: RowOptimizer,
        target_adam: RowOptimizer,
        forward,
        backward,
    ) -> tuple[float, float]:
        """One forward/backward + one optimizer step on gathered rows.

        ``src_rows``/``tgt_rows`` are embedding-row index arrays in the
        source/target view's index space — ``(path_len,)`` for a single
        chunk or ``(num_chunks, path_len)`` for a whole direction; the
        gathered tensors are 2-D or 3-D accordingly and the translators
        batch over the leading axis.  ``forward`` translates
        source->target, ``backward`` target->source (used by the
        reconstruction task).  Returns (translation loss, reconstruction
        loss) as floats, averaged over every path row involved.
        """
        a_src = Tensor(source_emb[src_rows], requires_grad=True)
        a_tgt = Tensor(target_emb[tgt_rows], requires_grad=True)

        translated = forward(a_src)
        losses = []
        t_loss_value = 0.0
        r_loss_value = 0.0
        if self.use_translation:
            t_loss = similarity_loss(translated, a_tgt, self.normalize)
            losses.append(t_loss)
            t_loss_value = t_loss.item()
        if self.use_reconstruction:
            reconstructed = backward(translated)
            r_loss = similarity_loss(reconstructed, a_src, self.normalize)
            losses.append(r_loss)
            r_loss_value = r_loss.item()

        total = losses[0]
        for extra in losses[1:]:
            total = total + extra

        self._translator_optim.zero_grad()
        total.backward()
        if self.metrics.enabled:
            self.metrics.observe(
                f"cross_view/{self.pair_label}/{self._metric_scope}"
                "grad_norm/translators",
                gradient_norm(
                    param.grad for param in self._translator_optim.parameters
                ),
            )
        self._translator_optim.step()
        if a_src.grad is not None:
            source_adam.update(
                src_rows.reshape(-1), a_src.grad.reshape(-1, self.dim)
            )
        if a_tgt.grad is not None:
            target_adam.update(
                tgt_rows.reshape(-1), a_tgt.grad.reshape(-1, self.dim)
            )
        return t_loss_value, r_loss_value

    def _train_direction(
        self,
        chunks: np.ndarray,
        src_map: np.ndarray,
        tgt_map: np.ndarray,
        source_emb: np.ndarray,
        target_emb: np.ndarray,
        source_adam: RowOptimizer,
        target_adam: RowOptimizer,
        forward,
        backward,
    ) -> tuple[float, float, int]:
        """Train one direction on its whole ``(num_chunks, path_len)`` matrix.

        Batched mode gathers all chunks into one ``(num_chunks, path_len,
        d)`` tensor, builds a single autograd graph whose Eq. 11-14 losses
        are means over chunks, and applies one translator Adam step plus
        one aggregated RowAdam update.  The per-chunk reference mode
        (``batched=False``) replays the same chunks one 2-D graph and one
        optimizer step at a time.  Returns summed (translation,
        reconstruction) losses and the number of chunks processed, so the
        caller's per-path averaging is identical in both modes.
        """
        num_chunks = chunks.shape[0]
        if num_chunks == 0:
            return 0.0, 0.0, 0
        if self.batched:
            t, r = self._train_step(
                src_map[chunks],
                tgt_map[chunks],
                source_emb,
                target_emb,
                source_adam,
                target_adam,
                forward,
                backward,
            )
            return t * num_chunks, r * num_chunks, num_chunks
        t_sum = 0.0
        r_sum = 0.0
        for chunk in chunks:
            t, r = self._train_step(
                src_map[chunk],
                tgt_map[chunk],
                source_emb,
                target_emb,
                source_adam,
                target_adam,
                forward,
                backward,
            )
            t_sum += t
            r_sum += r
        return t_sum, r_sum, num_chunks

    def train_epoch(
        self, rng: np.random.Generator | None = None
    ) -> CrossViewLosses:
        """Lines 9-12 of Algorithm 1 for this view-pair.

        ``rng`` replaces the trainer's shared stream for this epoch's
        sampling — with one private generator per pair per step the
        epoch's result no longer depends on the order pairs run in,
        which is what lets :meth:`repro.engine.ParallelRuntime.train_pairs`
        run view-disjoint pairs on concurrent threads.
        """
        losses = CrossViewLosses()
        chunks_i = self._sample_chunks(
            self.sub_i, self._walker_i, self._starts_i, rng=rng
        )
        chunks_j = self._sample_chunks(
            self.sub_j, self._walker_j, self._starts_j, rng=rng
        )
        type_i = self.pair.view_i.edge_type
        type_j = self.pair.view_j.edge_type
        directions = (
            (
                f"{type_i}->{type_j}",
                chunks_i,
                self._map_i_to_i,
                self._map_i_to_j,
                self._emb_i,
                self._emb_j,
                self._row_adam_i,
                self._row_adam_j,
                self.translator_ij,
                self.translator_ji,
            ),
            (
                f"{type_j}->{type_i}",
                chunks_j,
                self._map_j_to_j,
                self._map_j_to_i,
                self._emb_j,
                self._emb_i,
                self._row_adam_j,
                self._row_adam_i,
                self.translator_ji,
                self.translator_ij,
            ),
        )
        for label, *direction in directions:
            self._metric_scope = f"{label}/"
            try:
                t, r, n = self._train_direction(*direction)
            finally:
                self._metric_scope = ""
            losses.translation += t
            losses.reconstruction += r
            losses.num_paths += n
            if self.metrics.enabled:
                scope = f"cross_view/{self.pair_label}/{label}"
                self.metrics.counter(f"{scope}/chunks", n)
                if n:
                    self.metrics.observe(f"{scope}/translation", t / n)
                    self.metrics.observe(f"{scope}/reconstruction", r / n)
        if losses.num_paths:
            losses.translation /= losses.num_paths
            losses.reconstruction /= losses.num_paths
        return losses
