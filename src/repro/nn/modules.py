"""Layers used by the TransN translators and the neural baselines."""

from __future__ import annotations

import math
from typing import Iterator

import numpy as np

from repro.autograd import Tensor, softmax


class Module:
    """Minimal module base class: parameter discovery + train/eval modes.

    Subclasses assign :class:`Tensor` attributes (parameters) and/or
    :class:`Module` attributes (children); :meth:`parameters` walks both
    recursively.
    """

    def parameters(self) -> Iterator[Tensor]:
        """Yield all trainable tensors of this module and its children."""
        seen: set[int] = set()
        for value in self.__dict__.values():
            if isinstance(value, Tensor) and value.requires_grad:
                if id(value) not in seen:
                    seen.add(id(value))
                    yield value
            elif isinstance(value, Module):
                for param in value.parameters():
                    if id(param) not in seen:
                        seen.add(id(param))
                        yield param
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        for param in item.parameters():
                            if id(param) not in seen:
                                seen.add(id(param))
                                yield param

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # -- checkpoint protocol -------------------------------------------
    def state_dict(self) -> dict:
        """Parameter arrays in :meth:`parameters` order.

        The walk over ``__dict__`` is insertion-ordered, so the order is
        stable for a given module class — which is all positional
        restore needs.
        """
        return {"params": [p.data.copy() for p in self.parameters()]}

    def load_state_dict(self, state: dict) -> None:
        """Restore parameters in place (gradients are cleared)."""
        params = list(self.parameters())
        saved = state["params"]
        if len(saved) != len(params):
            raise ValueError(
                f"{type(self).__name__} has {len(params)} parameters, "
                f"checkpoint holds {len(saved)}"
            )
        for param, array in zip(params, saved):
            if param.data.shape != array.shape:
                raise ValueError(
                    f"{type(self).__name__} parameter shape "
                    f"{param.data.shape} does not match checkpoint shape "
                    f"{array.shape}"
                )
            param.data[:] = array
            param.grad = None

    def forward(self, *args, **kwargs) -> Tensor:
        raise NotImplementedError

    def __call__(self, *args, **kwargs) -> Tensor:
        return self.forward(*args, **kwargs)


class Linear(Module):
    """Conventional dense layer ``y = x W + b`` on the feature dimension."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
        dtype=np.float64,
    ) -> None:
        rng = rng or np.random.default_rng()
        scale = math.sqrt(2.0 / (in_features + out_features))
        # draw in float64 and cast after: the RNG consumption (and hence
        # every downstream draw) is identical across dtypes
        self.weight = Tensor(
            rng.normal(0.0, scale, size=(in_features, out_features)).astype(
                dtype, copy=False
            ),
            requires_grad=True,
        )
        self.bias = (
            Tensor(np.zeros((1, out_features), dtype=dtype), requires_grad=True)
            if bias
            else None
        )

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class SelfAttentionLayer(Module):
    """Equation (8): ``S(A) = softmax_rows(A A^T / sqrt(d)) A``.

    The paper's attention is parameter-free (no query/key/value
    projections): attention scores come directly from inner products of the
    path's embedding rows, scaled by ``1/sqrt(d)`` as in Vaswani et al.

    Accepts a single ``(path_len, d)`` matrix or a batch
    ``(num_chunks, path_len, d)``; the batched form attends within each
    chunk independently (one ``(N, p, p)`` score tensor, batched matmuls).
    """

    def __init__(self, dim: int) -> None:
        if dim <= 0:
            raise ValueError("embedding dimension must be positive")
        self.dim = dim

    def forward(self, a: Tensor) -> Tensor:
        if a.shape[-1] != self.dim:
            raise ValueError(
                f"expected last dimension {self.dim}, got {a.shape[-1]}"
            )
        scores = (a @ a.transpose(-2, -1)) * (1.0 / math.sqrt(self.dim))
        attention = softmax(scores, axis=-1)
        return attention @ a


class FeedForwardLayer(Module):
    """Equation (9): ``F(A) = relu(W A + b)``.

    Faithful to the paper, ``W`` has shape (path_len, path_len) and ``b``
    shape (path_len, 1): the layer mixes information *across path
    positions*, not across embedding dimensions.  This ties the translator
    to a fixed walk length, which is why TransN samples fixed-length walks.

    ``W`` is initialized near the identity so that an untrained translator
    is close to the identity map — training then only has to learn the
    *deviation* between views, which keeps early reconstruction losses
    small and optimization stable.

    Like :class:`SelfAttentionLayer`, accepts ``(path_len, d)`` or a
    ``(num_chunks, path_len, d)`` batch mixed chunk-by-chunk.
    """

    def __init__(
        self,
        path_len: int,
        rng: np.random.Generator | None = None,
        identity_init: bool = True,
        activation: str = "relu",
        dtype=np.float64,
    ) -> None:
        if path_len <= 0:
            raise ValueError("path length must be positive")
        if activation not in ("relu", "linear"):
            raise ValueError(f"unknown activation {activation!r}")
        rng = rng or np.random.default_rng()
        # float64 draw, cast after: RNG consumption is dtype-independent
        noise = rng.normal(0.0, 0.01, size=(path_len, path_len))
        base = np.eye(path_len) if identity_init else np.zeros((path_len, path_len))
        self.path_len = path_len
        self.activation = activation
        self.weight = Tensor(
            (base + noise).astype(dtype, copy=False), requires_grad=True
        )
        self.bias = Tensor(
            np.zeros((path_len, 1), dtype=dtype), requires_grad=True
        )

    def forward(self, a: Tensor) -> Tensor:
        if a.shape[-2] != self.path_len:
            raise ValueError(
                f"expected {self.path_len} path positions, got {a.shape[-2]}"
            )
        # (p, p) @ (..., p, d) broadcasts over leading batch axes, as does
        # the (p, 1) bias; their gradients reduce back via _unbroadcast.
        out = self.weight @ a + self.bias
        if self.activation == "relu":
            out = out.relu()
        return out


class Encoder(Module):
    """One encoder block: self-attention followed by feed-forward.

    A translator (Equation 10) is a stack of these; see
    :class:`repro.core.translator.Translator`.
    """

    def __init__(
        self,
        path_len: int,
        dim: int,
        rng: np.random.Generator | None = None,
        activation: str = "relu",
        dtype=np.float64,
    ) -> None:
        self.attention = SelfAttentionLayer(dim)
        self.feed_forward = FeedForwardLayer(
            path_len, rng=rng, activation=activation, dtype=dtype
        )

    def forward(self, a: Tensor) -> Tensor:
        return self.feed_forward(self.attention(a))


class Sequential(Module):
    """Apply child modules in order."""

    def __init__(self, *layers: Module) -> None:
        self.layers = list(layers)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]
