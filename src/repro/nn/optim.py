"""First-order optimizers for :mod:`repro.autograd` parameters."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.autograd import Tensor


class Optimizer:
    """Base class holding a parameter list and the zero-grad helper."""

    def __init__(self, parameters: Iterable[Tensor], lr: float) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 0.01,
        momentum: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            if self.momentum:
                velocity *= self.momentum
                velocity += param.grad
                param.data -= self.lr * velocity
            else:
                param.data -= self.lr * param.grad


class Adam(Optimizer):
    """Adam (Kingma & Ba 2014) — the optimizer Algorithm 1 prescribes."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 0.001,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ) -> None:
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        bias1 = 1.0 - self.beta1**t
        bias2 = 1.0 - self.beta2**t
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
