"""First-order optimizers.

Two families live here:

- dense optimizers over :mod:`repro.autograd` parameters (:class:`SGD`,
  :class:`Adam`) — used by the cross-view translators;
- sparse *row* optimizers over a numpy embedding matrix
  (:class:`RowSGD`, :class:`RowAdam`) — used wherever a batch touches only
  a few rows of a large matrix: the skip-gram hot loop and the cross-view
  updates of the common nodes' embeddings.

Row optimizers share the :class:`RowOptimizer` interface
(``update(rows, grads, lr=None)``), so trainers can swap SGD for Adam
without changing their update code; :func:`make_row_optimizer` resolves a
name to an instance.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.autograd import Tensor


def gradient_norm(grads: Iterable[np.ndarray | None]) -> float:
    """The global L2 norm over a collection of gradient arrays.

    ``None`` entries (parameters without a gradient yet) are skipped, so
    this can be fed ``param.grad`` straight off an optimizer's parameter
    list.  Used by the observability layer to report per-phase gradient
    magnitudes without each trainer re-deriving the reduction.

    Each array reduces in its own dtype — a float32 gradient must not be
    silently copied up to float64 just to be measured (the accumulator is
    a Python float either way).
    """
    total = 0.0
    for grad in grads:
        if grad is None:
            continue
        array = np.asarray(grad)
        total += float(np.dot(array.ravel(), array.ravel()))
    return float(np.sqrt(total))


class Optimizer:
    """Base class holding a parameter list and the zero-grad helper."""

    def __init__(self, parameters: Iterable[Tensor], lr: float) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    # -- checkpoint protocol -------------------------------------------
    def state_dict(self) -> dict:
        """Snapshot of the optimizer's internal state (moments, step
        counters, learning rate) — *not* the parameters themselves, which
        belong to their module."""
        raise NotImplementedError

    def load_state_dict(self, state: dict) -> None:
        raise NotImplementedError

    def _check_kind(self, state: dict, kind: str) -> None:
        got = state.get("kind")
        if got != kind:
            raise ValueError(
                f"optimizer state kind mismatch: checkpoint holds "
                f"{got!r}, this optimizer is {kind!r}"
            )

    def _check_buffer_count(self, buffers: list, name: str) -> None:
        if len(buffers) != len(self.parameters):
            raise ValueError(
                f"optimizer state {name!r} holds {len(buffers)} buffers "
                f"for {len(self.parameters)} parameters"
            )


class SGD(Optimizer):
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 0.01,
        momentum: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            if self.momentum:
                velocity *= self.momentum
                velocity += param.grad
                param.data -= self.lr * velocity
            else:
                param.data -= self.lr * param.grad

    def state_dict(self) -> dict:
        return {
            "kind": "sgd",
            "lr": self.lr,
            "momentum": self.momentum,
            "velocity": [v.copy() for v in self._velocity],
        }

    def load_state_dict(self, state: dict) -> None:
        self._check_kind(state, "sgd")
        self._check_buffer_count(state["velocity"], "velocity")
        self.lr = float(state["lr"])
        self.momentum = float(state["momentum"])
        for buffer, saved in zip(self._velocity, state["velocity"]):
            buffer[:] = saved


class Adam(Optimizer):
    """Adam (Kingma & Ba 2014) — the optimizer Algorithm 1 prescribes."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 0.001,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ) -> None:
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        bias1 = 1.0 - self.beta1**t
        bias2 = 1.0 - self.beta2**t
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> dict:
        return {
            "kind": "adam",
            "lr": self.lr,
            "step_count": self._step_count,
            "m": [m.copy() for m in self._m],
            "v": [v.copy() for v in self._v],
        }

    def load_state_dict(self, state: dict) -> None:
        self._check_kind(state, "adam")
        self._check_buffer_count(state["m"], "m")
        self._check_buffer_count(state["v"], "v")
        self.lr = float(state["lr"])
        self._step_count = int(state["step_count"])
        for buffer, saved in zip(self._m, state["m"]):
            buffer[:] = saved
        for buffer, saved in zip(self._v, state["v"]):
            buffer[:] = saved


# ----------------------------------------------------------------------
# sparse row optimizers
# ----------------------------------------------------------------------
class RowOptimizer:
    """Optimizer over an embedding matrix receiving sparse row gradients.

    ``update(rows, grads)`` applies one step to the listed rows given one
    gradient row per occurrence (rows may repeat within a batch; how
    repeats are aggregated is subclass-specific).  ``lr`` passed to
    :meth:`update` overrides the constructor default for that step, which
    is how learning-rate schedules reach the hot loop.
    """

    def __init__(self, matrix: np.ndarray, lr: float) -> None:
        if matrix.ndim != 2:
            raise ValueError("row optimizers need a 2-D matrix")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.matrix = matrix
        self.lr = lr

    def update(
        self, rows: np.ndarray, grads: np.ndarray, lr: float | None = None
    ) -> None:
        raise NotImplementedError

    # -- checkpoint protocol -------------------------------------------
    def state_dict(self) -> dict:
        """Snapshot of moment buffers and lr — never of ``matrix``, which
        is owned (and saved) by the trainer holding it."""
        raise NotImplementedError

    def load_state_dict(self, state: dict) -> None:
        raise NotImplementedError


class RowSGD(RowOptimizer):
    """Plain SGD on rows; repeated rows receive the *mean* of their
    per-occurrence gradients.

    On small graphs a node can appear dozens of times per batch; summing
    would multiply the effective learning rate by that count and
    demonstrably diverges, while the mean matches the sequential word2vec
    update in expectation.
    """

    def update(
        self, rows: np.ndarray, grads: np.ndarray, lr: float | None = None
    ) -> None:
        step = self.lr if lr is None else lr
        unique, inverse, counts = np.unique(
            rows, return_inverse=True, return_counts=True
        )
        aggregated = np.zeros(
            (unique.size, self.matrix.shape[1]), dtype=self.matrix.dtype
        )
        np.add.at(aggregated, inverse, grads)
        aggregated /= counts[:, None]
        self.matrix[unique] -= step * aggregated

    def state_dict(self) -> dict:
        return {"kind": "sgd", "lr": self.lr}

    def load_state_dict(self, state: dict) -> None:
        if state.get("kind") != "sgd":
            raise ValueError(
                f"row-optimizer state kind mismatch: checkpoint holds "
                f"{state.get('kind')!r}, this optimizer is 'sgd'"
            )
        self.lr = float(state["lr"])


class RowAdam(RowOptimizer):
    """Adam over an embedding matrix receiving sparse row gradients.

    Repeated rows are *sum*-aggregated (one Adam step per batch per row);
    bias correction uses a global step count (the usual sparse-Adam
    simplification).
    """

    def __init__(
        self,
        matrix: np.ndarray,
        lr: float,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ) -> None:
        super().__init__(matrix, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._m = np.zeros_like(matrix)
        self._v = np.zeros_like(matrix)
        self._t = 0

    def update(
        self, rows: np.ndarray, grads: np.ndarray, lr: float | None = None
    ) -> None:
        step = self.lr if lr is None else lr
        rows = np.asarray(rows, dtype=np.int64)
        unique, inverse = np.unique(rows, return_inverse=True)
        aggregated = np.zeros(
            (unique.size, self.matrix.shape[1]), dtype=self.matrix.dtype
        )
        np.add.at(aggregated, inverse, grads)
        self._t += 1
        m = self._m[unique]
        v = self._v[unique]
        m = self.beta1 * m + (1.0 - self.beta1) * aggregated
        v = self.beta2 * v + (1.0 - self.beta2) * aggregated**2
        self._m[unique] = m
        self._v[unique] = v
        m_hat = m / (1.0 - self.beta1**self._t)
        v_hat = v / (1.0 - self.beta2**self._t)
        self.matrix[unique] -= step * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> dict:
        return {
            "kind": "adam",
            "lr": self.lr,
            "t": self._t,
            "m": self._m.copy(),
            "v": self._v.copy(),
        }

    def load_state_dict(self, state: dict) -> None:
        if state.get("kind") != "adam":
            raise ValueError(
                f"row-optimizer state kind mismatch: checkpoint holds "
                f"{state.get('kind')!r}, this optimizer is 'adam'"
            )
        for name in ("m", "v"):
            if state[name].shape != self.matrix.shape:
                raise ValueError(
                    f"RowAdam buffer {name!r} shape {state[name].shape} "
                    f"does not match matrix shape {self.matrix.shape}"
                )
        self.lr = float(state["lr"])
        self._t = int(state["t"])
        self._m[:] = state["m"]
        self._v[:] = state["v"]


_ROW_OPTIMIZERS = {"sgd": RowSGD, "adam": RowAdam}


def make_row_optimizer(
    kind: str | RowOptimizer, matrix: np.ndarray, lr: float
) -> RowOptimizer:
    """Resolve ``"sgd"``/``"adam"`` (or pass an instance through)."""
    if isinstance(kind, RowOptimizer):
        return kind
    try:
        cls = _ROW_OPTIMIZERS[kind.lower()]
    except (KeyError, AttributeError):
        raise ValueError(
            f"unknown row optimizer {kind!r}; choose from "
            + ", ".join(sorted(_ROW_OPTIMIZERS))
        ) from None
    return cls(matrix, lr=lr)
