"""Neural-network modules and optimizers built on :mod:`repro.autograd`.

The layer zoo is exactly what the paper needs:

- :class:`~repro.nn.modules.SelfAttentionLayer` — Equation (8):
  ``S(A) = softmax(A A^T / sqrt(d)) A``.
- :class:`~repro.nn.modules.FeedForwardLayer` — Equation (9):
  ``F(A) = relu(W A + b)`` with ``W`` of shape (path_len, path_len) and
  ``b`` of shape (path_len, 1), i.e. mixing along the *path* dimension.
- :class:`~repro.nn.modules.Encoder` — one self-attention layer followed by
  one feed-forward layer.
- :class:`~repro.nn.modules.Linear` — a conventional dense layer used by
  the R-GCN baseline and the simple-translator ablation.

plus :class:`~repro.nn.optim.SGD` and :class:`~repro.nn.optim.Adam`
(Kingma & Ba, the optimizer Algorithm 1 prescribes) and their sparse
counterparts :class:`~repro.nn.optim.RowSGD` /
:class:`~repro.nn.optim.RowAdam` for per-row embedding-matrix updates.
"""

from repro.nn.modules import (
    Encoder,
    FeedForwardLayer,
    Linear,
    Module,
    SelfAttentionLayer,
    Sequential,
)
from repro.nn.optim import (
    SGD,
    Adam,
    Optimizer,
    RowAdam,
    RowOptimizer,
    RowSGD,
    gradient_norm,
    make_row_optimizer,
)

__all__ = [
    "Module",
    "Linear",
    "SelfAttentionLayer",
    "FeedForwardLayer",
    "Encoder",
    "Sequential",
    "Optimizer",
    "SGD",
    "Adam",
    "RowOptimizer",
    "RowSGD",
    "RowAdam",
    "gradient_norm",
    "make_row_optimizer",
]
