"""Labelled 2-D scatter plots rendered straight to SVG.

Used to draw the Figure 6 case-study projections without any plotting
dependency: categories get distinct colours from a fixed palette, a
legend is laid out down the right edge, and points carry ``<title>``
elements so hovering in a browser reveals the node ID.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence
from xml.sax.saxutils import escape

import numpy as np

# colour-blind-friendly palette (Okabe-Ito), cycled when categories exceed it
_PALETTE = [
    "#E69F00", "#56B4E9", "#009E73", "#F0E442",
    "#0072B2", "#D55E00", "#CC79A7", "#000000", "#999999",
]


def _color_for(index: int) -> str:
    return _PALETTE[index % len(_PALETTE)]


def render_scatter_svg(
    points: np.ndarray,
    labels: Sequence[object],
    names: Sequence[object] | None = None,
    title: str = "",
    width: int = 640,
    height: int = 480,
    point_radius: float = 4.0,
) -> str:
    """Render ``points`` (n, 2) coloured by ``labels`` as an SVG string.

    Args:
        points: 2-D coordinates, one row per point.
        labels: category label per point (drives colour + legend).
        names: optional per-point hover titles (e.g. node IDs).
        title: figure caption drawn at the top.
        width, height: canvas size in pixels.
        point_radius: marker radius.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError("points must be an (n, 2) array")
    if len(labels) != points.shape[0]:
        raise ValueError("labels must match points")
    if names is not None and len(names) != points.shape[0]:
        raise ValueError("names must match points")

    categories = sorted({str(l) for l in labels})
    color = {cat: _color_for(i) for i, cat in enumerate(categories)}

    margin = 40
    legend_width = 120
    plot_w = width - 2 * margin - legend_width
    plot_h = height - 2 * margin
    lo = points.min(axis=0)
    hi = points.max(axis=0)
    span = np.where(hi - lo > 0, hi - lo, 1.0)

    def to_px(p: np.ndarray) -> tuple[float, float]:
        x = margin + (p[0] - lo[0]) / span[0] * plot_w
        y = margin + (1.0 - (p[1] - lo[1]) / span[1]) * plot_h
        return x, y

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{width / 2:.0f}" y="24" text-anchor="middle" '
            f'font-family="sans-serif" font-size="15">{escape(title)}</text>'
        )
    parts.append(
        f'<rect x="{margin}" y="{margin}" width="{plot_w}" '
        f'height="{plot_h}" fill="none" stroke="#ccc"/>'
    )
    for k, point in enumerate(points):
        x, y = to_px(point)
        cat = str(labels[k])
        hover = (
            f"<title>{escape(str(names[k]))} ({escape(cat)})</title>"
            if names is not None
            else ""
        )
        parts.append(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{point_radius}" '
            f'fill="{color[cat]}" fill-opacity="0.85">{hover}</circle>'
        )
    legend_x = width - legend_width - margin / 2
    for i, cat in enumerate(categories):
        y = margin + 12 + i * 20
        parts.append(
            f'<circle cx="{legend_x:.0f}" cy="{y}" r="5" '
            f'fill="{color[cat]}"/>'
        )
        parts.append(
            f'<text x="{legend_x + 12:.0f}" y="{y + 4}" '
            f'font-family="sans-serif" font-size="12">{escape(cat)}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def save_scatter_svg(path: str | Path, *args, **kwargs) -> None:
    """Render (see :func:`render_scatter_svg`) and write to ``path``."""
    Path(path).write_text(render_scatter_svg(*args, **kwargs))
