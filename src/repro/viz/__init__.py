"""Dependency-free visualization helpers.

matplotlib is not available offline, so :mod:`repro.viz.scatter` renders
labelled 2-D scatter plots (the Figure 6 artifact) directly to SVG.
"""

from repro.viz.scatter import render_scatter_svg, save_scatter_svg

__all__ = ["render_scatter_svg", "save_scatter_svg"]
