"""LINE with second-order proximity (Tang et al. 2015).

Edge sampling: edges are drawn with probability proportional to weight
(alias table); for a drawn edge (u, v), u's vertex embedding and v's
*context* embedding are pushed together against negative contexts drawn
from the degree^0.75 distribution — exactly the SGNS update, with edges
in place of walk pairs.
"""

from __future__ import annotations

import numpy as np

from repro.graph.alias import AliasSampler
from repro.graph.heterograph import HeteroGraph
from repro.skipgram import NoiseDistribution, SkipGramTrainer

from repro.baselines.base import EmbeddingMethod, Embeddings


class LINE(EmbeddingMethod):
    """LINE (2nd order).  Types are ignored; weights are respected."""

    name = "LINE"

    def __init__(
        self,
        dim: int = 32,
        seed: int = 0,
        num_samples: int = 200_000,
        num_negatives: int = 5,
        lr: float = 0.15,
        batch_size: int = 256,
    ) -> None:
        super().__init__(dim=dim, seed=seed)
        self.num_samples = num_samples
        self.num_negatives = num_negatives
        self.lr = lr
        self.batch_size = batch_size

    def fit(self, graph: HeteroGraph) -> Embeddings:
        rng = self._rng()
        matrix = self._init_matrix(graph.num_nodes, rng)
        trainer = SkipGramTrainer(matrix, rng=rng)

        edges = graph.edges
        if not edges:
            raise ValueError("LINE needs at least one edge")
        edge_sampler = AliasSampler([e.weight for e in edges])
        # each undirected edge yields both directions
        sources = np.array(
            [graph.index_of(e.u) for e in edges], dtype=np.int64
        )
        targets = np.array(
            [graph.index_of(e.v) for e in edges], dtype=np.int64
        )
        degrees = np.array(
            [graph.weighted_degree(n) for n in graph.nodes], dtype=np.float64
        )
        noise = NoiseDistribution(degrees, graph.num_nodes)

        drawn = 0
        while drawn < self.num_samples:
            batch = min(self.batch_size, self.num_samples - drawn)
            picks = np.asarray(edge_sampler.sample(rng, size=batch))
            flip = rng.random(batch) < 0.5
            centers = np.where(flip, sources[picks], targets[picks])
            contexts = np.where(flip, targets[picks], sources[picks])
            negatives = noise.sample(rng, size=batch * self.num_negatives)
            trainer.train_batch(
                centers,
                contexts,
                negatives.reshape(batch, self.num_negatives),
                lr=self.lr,
            )
            drawn += batch
        return self._as_dict(graph, matrix)
