"""LINE with second-order proximity (Tang et al. 2015).

Edge sampling: edges are drawn with probability proportional to weight
(alias table); for a drawn edge (u, v), u's vertex embedding and v's
*context* embedding are pushed together against negative contexts drawn
from the degree^0.75 distribution — exactly the SGNS update, with edges
in place of walk pairs.  The draw→batch→update chain runs through the
engine's :class:`~repro.engine.EdgeSamplingPipeline`.
"""

from __future__ import annotations

from pathlib import Path

from repro.engine import EdgeSamplingPipeline, SkipGramPhase
from repro.graph.heterograph import HeteroGraph
from repro.skipgram import SkipGramTrainer

from repro.baselines.base import EmbeddingMethod, Embeddings


class LINE(EmbeddingMethod):
    """LINE (2nd order).  Types are ignored; weights are respected."""

    name = "LINE"

    def __init__(
        self,
        dim: int = 32,
        seed: int = 0,
        num_samples: int = 200_000,
        num_negatives: int = 5,
        lr: float = 0.15,
        batch_size: int = 256,
        report: str | Path | None = None,
        trace_memory: bool = False,
    ) -> None:
        super().__init__(
            dim=dim, seed=seed, report=report, trace_memory=trace_memory
        )
        self.num_samples = num_samples
        self.num_negatives = num_negatives
        self.lr = lr
        self.batch_size = batch_size

    def fit(self, graph: HeteroGraph) -> Embeddings:
        if not graph.edges:
            raise ValueError("LINE needs at least one edge")
        rng = self._rng()
        matrix = self._init_matrix(graph.num_nodes, rng)
        trainer = SkipGramTrainer(matrix, rng=rng)
        pipeline = EdgeSamplingPipeline(
            graph,
            num_samples=self.num_samples,
            num_negatives=self.num_negatives,
            batch_size=self.batch_size,
            rng=rng,
        )
        # one epoch streams all num_samples edge draws
        self._run_loop(
            [SkipGramPhase("edges", pipeline, trainer, lr=self.lr)], 1
        )
        return self._as_dict(graph, matrix)
