"""Node2Vec (Grover & Leskovec 2016): p/q-biased walks + skip-gram."""

from __future__ import annotations

from pathlib import Path

from repro.engine import CorpusPipeline, SkipGramPhase
from repro.graph.heterograph import HeteroGraph
from repro.skipgram import SkipGramTrainer
from repro.walks import Node2VecPolicy

from repro.baselines.base import EmbeddingMethod, Embeddings


class Node2Vec(EmbeddingMethod):
    """Second-order biased walks (return p, in-out q) fed to SGNS.

    Walks run on the lockstep engine via
    :class:`repro.walks.Node2VecPolicy` — the whole corpus advances per
    vectorized step instead of one scalar alias draw per node.
    """

    name = "Node2Vec"

    def __init__(
        self,
        dim: int = 32,
        seed: int = 0,
        p: float = 1.0,
        q: float = 0.5,
        walk_length: int = 20,
        walks_per_node: int = 6,
        window: int = 3,
        num_negatives: int = 5,
        epochs: int = 4,
        lr: float = 0.08,
        batch_size: int = 128,
        report: str | Path | None = None,
        trace_memory: bool = False,
    ) -> None:
        super().__init__(
            dim=dim, seed=seed, report=report, trace_memory=trace_memory
        )
        self.p = p
        self.q = q
        self.walk_length = walk_length
        self.walks_per_node = walks_per_node
        self.window = window
        self.num_negatives = num_negatives
        self.epochs = epochs
        self.lr = lr
        self.batch_size = batch_size

    def fit(self, graph: HeteroGraph) -> Embeddings:
        rng = self._rng()
        matrix = self._init_matrix(graph.num_nodes, rng)
        trainer = SkipGramTrainer(matrix, rng=rng)
        pipeline = CorpusPipeline.for_policy(
            graph,
            Node2VecPolicy(p=self.p, q=self.q),
            length=self.walk_length,
            window=self.window,
            walks_per_node=self.walks_per_node,
            num_negatives=self.num_negatives,
            batch_size=self.batch_size,
            rng=rng,
        )
        self._run_loop(
            [SkipGramPhase("sgns", pipeline, trainer, lr=self.lr)],
            self.epochs,
        )
        return self._as_dict(graph, matrix)
