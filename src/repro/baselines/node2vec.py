"""Node2Vec (Grover & Leskovec 2016): p/q-biased walks + skip-gram."""

from __future__ import annotations

import numpy as np

from repro.graph.heterograph import HeteroGraph
from repro.skipgram import NoiseDistribution, SkipGramTrainer
from repro.walks import Node2VecWalker, build_corpus

from repro.baselines.base import EmbeddingMethod, Embeddings
from repro.baselines.deepwalk import _pairs_to_indices, _sgns_epoch


class Node2Vec(EmbeddingMethod):
    """Second-order biased walks (return p, in-out q) fed to SGNS."""

    name = "Node2Vec"

    def __init__(
        self,
        dim: int = 32,
        seed: int = 0,
        p: float = 1.0,
        q: float = 0.5,
        walk_length: int = 20,
        walks_per_node: int = 6,
        window: int = 3,
        num_negatives: int = 5,
        epochs: int = 4,
        lr: float = 0.08,
        batch_size: int = 128,
    ) -> None:
        super().__init__(dim=dim, seed=seed)
        self.p = p
        self.q = q
        self.walk_length = walk_length
        self.walks_per_node = walks_per_node
        self.window = window
        self.num_negatives = num_negatives
        self.epochs = epochs
        self.lr = lr
        self.batch_size = batch_size

    def fit(self, graph: HeteroGraph) -> Embeddings:
        rng = self._rng()
        matrix = self._init_matrix(graph.num_nodes, rng)
        trainer = SkipGramTrainer(matrix, rng=rng)
        walker = Node2VecWalker(graph, p=self.p, q=self.q, rng=rng)
        noise: NoiseDistribution | None = None
        for _ in range(self.epochs):
            corpus = build_corpus(
                graph,
                walker,
                length=self.walk_length,
                walks_per_node_override=self.walks_per_node,
                rng=rng,
            )
            if noise is None:
                counts = np.zeros(graph.num_nodes)
                for node, count in corpus.node_frequencies().items():
                    counts[graph.index_of(node)] = count
                noise = NoiseDistribution(counts, graph.num_nodes)
            centers, contexts = _pairs_to_indices(graph, corpus, self.window)
            _sgns_epoch(
                trainer,
                centers,
                contexts,
                noise,
                rng,
                self.num_negatives,
                self.lr,
                self.batch_size,
            )
        return self._as_dict(graph, matrix)
