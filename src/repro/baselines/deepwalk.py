"""DeepWalk (Perozzi et al. 2014): uniform walks + skip-gram."""

from __future__ import annotations

import numpy as np

from repro.graph.heterograph import HeteroGraph
from repro.skipgram import NoiseDistribution, SkipGramTrainer, extract_pairs
from repro.walks import UniformWalker, build_corpus

from repro.baselines.base import EmbeddingMethod, Embeddings


class DeepWalk(EmbeddingMethod):
    """Type-blind uniform random walks fed to SGNS.

    Args:
        dim: embedding dimensionality.
        walk_length: nodes per walk.
        walks_per_node: walks started at every node.
        window: skip-gram context window.
        num_negatives: negatives per pair.
        epochs: passes over freshly sampled corpora.
        lr: SGD learning rate.
    """

    name = "DeepWalk"

    def __init__(
        self,
        dim: int = 32,
        seed: int = 0,
        walk_length: int = 20,
        walks_per_node: int = 6,
        window: int = 3,
        num_negatives: int = 5,
        epochs: int = 4,
        lr: float = 0.08,
        batch_size: int = 128,
    ) -> None:
        super().__init__(dim=dim, seed=seed)
        self.walk_length = walk_length
        self.walks_per_node = walks_per_node
        self.window = window
        self.num_negatives = num_negatives
        self.epochs = epochs
        self.lr = lr
        self.batch_size = batch_size

    def fit(self, graph: HeteroGraph) -> Embeddings:
        rng = self._rng()
        matrix = self._init_matrix(graph.num_nodes, rng)
        trainer = SkipGramTrainer(matrix, rng=rng)
        walker = UniformWalker(graph, rng=rng)
        noise: NoiseDistribution | None = None
        for _ in range(self.epochs):
            corpus = build_corpus(
                graph,
                walker,
                length=self.walk_length,
                walks_per_node_override=self.walks_per_node,
                rng=rng,
            )
            if noise is None:
                counts = np.zeros(graph.num_nodes)
                for node, count in corpus.node_frequencies().items():
                    counts[graph.index_of(node)] = count
                noise = NoiseDistribution(counts, graph.num_nodes)
            centers, contexts = _pairs_to_indices(graph, corpus, self.window)
            _sgns_epoch(
                trainer,
                centers,
                contexts,
                noise,
                rng,
                self.num_negatives,
                self.lr,
                self.batch_size,
            )
        return self._as_dict(graph, matrix)


def _pairs_to_indices(graph: HeteroGraph, corpus, window: int):
    """Flatten a corpus into (center, context) index arrays."""
    centers: list[int] = []
    contexts: list[int] = []
    for walk in corpus:
        for center, context in extract_pairs(walk, window):
            centers.append(graph.index_of(center))
            contexts.append(graph.index_of(context))
    return (
        np.asarray(centers, dtype=np.int64),
        np.asarray(contexts, dtype=np.int64),
    )


def _sgns_epoch(
    trainer: SkipGramTrainer,
    centers: np.ndarray,
    contexts: np.ndarray,
    noise: NoiseDistribution,
    rng: np.random.Generator,
    num_negatives: int,
    lr: float,
    batch_size: int,
) -> float:
    """Shared minibatched SGNS pass used by all walk-based baselines."""
    if centers.size == 0:
        return 0.0
    total, batches = 0.0, 0
    for start in range(0, centers.size, batch_size):
        end = min(start + batch_size, centers.size)
        negatives = noise.sample(rng, size=(end - start) * num_negatives)
        total += trainer.train_batch(
            centers[start:end],
            contexts[start:end],
            negatives.reshape(end - start, num_negatives),
            lr=lr,
        )
        batches += 1
    return total / batches
