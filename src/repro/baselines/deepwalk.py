"""DeepWalk (Perozzi et al. 2014): uniform walks + skip-gram."""

from __future__ import annotations

from pathlib import Path

from repro.engine import CorpusPipeline, SkipGramPhase
from repro.graph.heterograph import HeteroGraph
from repro.skipgram import SkipGramTrainer
from repro.walks import UniformPolicy

from repro.baselines.base import EmbeddingMethod, Embeddings


class DeepWalk(EmbeddingMethod):
    """Type-blind uniform random walks fed to SGNS.

    Args:
        dim: embedding dimensionality.
        walk_length: nodes per walk.
        walks_per_node: walks started at every node.
        window: skip-gram context window.
        num_negatives: negatives per pair.
        epochs: passes over freshly sampled corpora.
        lr: SGD learning rate.
    """

    name = "DeepWalk"

    def __init__(
        self,
        dim: int = 32,
        seed: int = 0,
        walk_length: int = 20,
        walks_per_node: int = 6,
        window: int = 3,
        num_negatives: int = 5,
        epochs: int = 4,
        lr: float = 0.08,
        batch_size: int = 128,
        report: str | Path | None = None,
        trace_memory: bool = False,
    ) -> None:
        super().__init__(
            dim=dim, seed=seed, report=report, trace_memory=trace_memory
        )
        self.walk_length = walk_length
        self.walks_per_node = walks_per_node
        self.window = window
        self.num_negatives = num_negatives
        self.epochs = epochs
        self.lr = lr
        self.batch_size = batch_size

    def fit(self, graph: HeteroGraph) -> Embeddings:
        rng = self._rng()
        matrix = self._init_matrix(graph.num_nodes, rng)
        trainer = SkipGramTrainer(matrix, rng=rng)
        pipeline = CorpusPipeline.for_policy(
            graph,
            UniformPolicy(),
            length=self.walk_length,
            window=self.window,
            walks_per_node=self.walks_per_node,
            num_negatives=self.num_negatives,
            batch_size=self.batch_size,
            rng=rng,
        )
        self._run_loop(
            [SkipGramPhase("sgns", pipeline, trainer, lr=self.lr)],
            self.epochs,
        )
        return self._as_dict(graph, matrix)
