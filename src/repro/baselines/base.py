"""Common interface of all embedding methods (TransN and baselines)."""

from __future__ import annotations

from abc import ABC, abstractmethod
from pathlib import Path

import numpy as np

from repro.engine import (
    NULL_REGISTRY,
    NULL_TRACER,
    Callback,
    LoopResult,
    MetricsRegistry,
    NumericalHealthGuard,
    Phase,
    RunReport,
    Tracer,
    TrainingLoop,
)
from repro.graph.heterograph import HeteroGraph, NodeId

Embeddings = dict[NodeId, np.ndarray]


class EmbeddingMethod(ABC):
    """A network-embedding method: ``fit(graph) -> {node: vector}``.

    Subclasses must set :attr:`name` and implement :meth:`fit`; the
    returned mapping must contain *every* node of the input graph (methods
    that cannot embed some nodes — e.g. Metapath2Vec for off-path types —
    return zero vectors for them, which is what running the original code
    and filling gaps would give the downstream classifier).

    Methods that train through :meth:`_run_loop` (all SGNS-style methods)
    honour :attr:`callbacks` — engine hooks attached before ``fit`` — and
    record the engine's :class:`~repro.engine.LoopResult` (loss history,
    per-phase timings) in :attr:`last_run_`.
    """

    name: str = "unnamed"

    def __init__(
        self,
        dim: int = 32,
        seed: int = 0,
        report: str | Path | None = None,
        trace_memory: bool = False,
    ) -> None:
        if dim < 1:
            raise ValueError("dim must be >= 1")
        self.dim = dim
        self.seed = seed
        self.callbacks: list[Callback] = []
        self.last_run_: LoopResult | None = None
        self.metrics: MetricsRegistry = NULL_REGISTRY
        self.tracer: Tracer = NULL_TRACER
        self.report_path: Path | None = None
        if report is not None:
            self.enable_report(report, trace_memory=trace_memory)

    @abstractmethod
    def fit(self, graph: HeteroGraph) -> Embeddings:
        """Train on ``graph`` and return an embedding per node."""

    def enable_report(
        self, path: str | Path, trace_memory: bool = False
    ) -> None:
        """Collect metrics + spans during :meth:`fit` and write a
        versioned JSON run report (see docs/observability.md) to ``path``
        when it finishes."""
        self.report_path = Path(path)
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(trace_memory=trace_memory)

    def _run_loop(self, phases: list[Phase], num_epochs: int) -> LoopResult:
        """Run an engine loop with this method's callbacks attached."""
        if self.metrics.enabled:
            for phase in phases:
                trainer = getattr(phase, "trainer", None)
                if trainer is not None and hasattr(trainer, "metrics"):
                    trainer.metrics = self.metrics
                    trainer.metric_prefix = f"{phase.name}/"
        loop = TrainingLoop(
            phases,
            callbacks=self.callbacks,
            metrics=self.metrics,
            tracer=self.tracer,
        )
        try:
            self.last_run_ = loop.run(num_epochs)
        finally:
            self._write_report()
        return self.last_run_

    def _write_report(self) -> None:
        """Serialize the run report if :meth:`enable_report` was called.

        Methods that train through :meth:`_run_loop` get this for free;
        hand-rolled ``fit`` loops (R-GCN, SimplE, HIN2Vec) call it at the
        end of training themselves.
        """
        if self.report_path is None:
            return
        try:
            RunReport(
                self.metrics,
                self.tracer,
                metadata={
                    "model": self.name.lower(),
                    "dim": self.dim,
                    "seed": self.seed,
                },
            ).write(self.report_path)
        finally:
            self.tracer.close()

    def attach_health_guard(self, policy: str = "raise") -> None:
        """Watch this method's training for NaN/Inf and loss explosions.

        Baselines have no snapshot protocol, so only the stateless
        policies apply here: ``"raise"`` (fail fast with a diagnostic)
        and ``"skip"`` (log and continue).  ``"rollback"`` needs
        checkpointable model state and is only available on TransN.
        """
        if policy == "rollback":
            raise ValueError(
                f"policy 'rollback' needs checkpointable model state, "
                f"which {self.name} does not expose; use 'raise' or 'skip'"
            )
        self.callbacks.append(NumericalHealthGuard(policy=policy))

    # ------------------------------------------------------------------
    # helpers shared by subclasses
    # ------------------------------------------------------------------
    def _rng(self) -> np.random.Generator:
        return np.random.default_rng(self.seed)

    def _init_matrix(
        self, num_rows: int, rng: np.random.Generator
    ) -> np.ndarray:
        """word2vec-style input initialization."""
        bound = 0.5 / self.dim
        return rng.uniform(-bound, bound, size=(num_rows, self.dim))

    def _as_dict(
        self, graph: HeteroGraph, matrix: np.ndarray
    ) -> Embeddings:
        """Map a (num_nodes, dim) matrix in graph index order to a dict."""
        return {
            node: matrix[graph.index_of(node)].copy() for node in graph.nodes
        }


class RandomEmbedding(EmbeddingMethod):
    """Gaussian random embeddings — the sanity-check floor every trained
    method must beat (used by the integration tests)."""

    name = "Random"

    def fit(self, graph: HeteroGraph) -> Embeddings:
        rng = self._rng()
        matrix = rng.normal(size=(graph.num_nodes, self.dim))
        return self._as_dict(graph, matrix)
