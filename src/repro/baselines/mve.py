"""MVE (Qu et al. 2017), unsupervised equal-weight variant.

MVE learns one embedding per node per view with skip-gram, plus a robust
*consensus* embedding; view-specific embeddings are regularized toward the
consensus.  The supervised attention over views is replaced — as the paper
prescribes for fair comparison — by equal view weights, making the
consensus the plain average.  Views are separated by edge type (the same
separation TransN uses) so MVE can run on multi-node-type networks here;
its published form assumes a single node type, which is the limitation
Section I discusses.

Each view is one :class:`~repro.engine.SkipGramPhase` and the consensus
pull a trailing :class:`~repro.engine.CallablePhase` of the same engine
loop, so MVE's per-view losses and timings are observable like any other
method's.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.engine import CallablePhase, CorpusPipeline, Phase, SkipGramPhase
from repro.graph.heterograph import HeteroGraph
from repro.graph.views import View, separate_views
from repro.skipgram import SkipGramTrainer
from repro.walks import UniformPolicy

from repro.baselines.base import EmbeddingMethod, Embeddings


class MVE(EmbeddingMethod):
    """Multi-view embedding with consensus regularization."""

    name = "MVE"

    def __init__(
        self,
        dim: int = 32,
        seed: int = 0,
        walk_length: int = 20,
        walks_per_node: int = 6,
        window: int = 2,
        num_negatives: int = 5,
        epochs: int = 4,
        lr: float = 0.08,
        consensus_pull: float = 0.2,
        batch_size: int = 128,
        report: str | Path | None = None,
        trace_memory: bool = False,
    ) -> None:
        super().__init__(
            dim=dim, seed=seed, report=report, trace_memory=trace_memory
        )
        self.walk_length = walk_length
        self.walks_per_node = walks_per_node
        self.window = window
        self.num_negatives = num_negatives
        self.epochs = epochs
        self.lr = lr
        self.consensus_pull = consensus_pull
        self.batch_size = batch_size

    def _view_pipeline(
        self, view: View, rng: np.random.Generator
    ) -> CorpusPipeline:
        return CorpusPipeline.for_policy(
            view,
            UniformPolicy(),
            length=self.walk_length,
            window=self.window,
            walks_per_node=self.walks_per_node,
            num_negatives=self.num_negatives,
            batch_size=self.batch_size,
            rng=rng,
        )

    def fit(self, graph: HeteroGraph) -> Embeddings:
        rng = self._rng()
        views = separate_views(graph)
        view_emb = {
            v.edge_type: self._init_matrix(v.num_nodes, rng) for v in views
        }
        trainers = {
            v.edge_type: SkipGramTrainer(view_emb[v.edge_type], rng=rng)
            for v in views
        }

        consensus = np.zeros((graph.num_nodes, self.dim))
        counts = np.zeros(graph.num_nodes)
        for view in views:
            for node in view.graph.nodes:
                counts[graph.index_of(node)] += 1

        def consensus_step(loop, epoch) -> dict[str, float]:
            # consensus = equal-weight average of view embeddings
            consensus[:] = 0.0
            for view in views:
                matrix = view_emb[view.edge_type]
                for node in view.graph.nodes:
                    consensus[graph.index_of(node)] += matrix[
                        view.graph.index_of(node)
                    ]
            nonzero = counts > 0
            consensus[nonzero] /= counts[nonzero, None]
            # pull every view embedding toward the consensus
            shift = 0.0
            for view in views:
                matrix = view_emb[view.edge_type]
                for node in view.graph.nodes:
                    i = view.graph.index_of(node)
                    g = graph.index_of(node)
                    delta = self.consensus_pull * (consensus[g] - matrix[i])
                    matrix[i] += delta
                    shift += float(np.abs(delta).sum())
            return {"shift": shift}

        phases: list[Phase] = [
            SkipGramPhase(
                f"view:{view.edge_type}",
                self._view_pipeline(view, rng),
                trainers[view.edge_type],
                lr=self.lr,
            )
            for view in views
        ]
        phases.append(CallablePhase("consensus", consensus_step))
        self._run_loop(phases, self.epochs)
        return self._as_dict(graph, consensus)
