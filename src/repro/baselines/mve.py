"""MVE (Qu et al. 2017), unsupervised equal-weight variant.

MVE learns one embedding per node per view with skip-gram, plus a robust
*consensus* embedding; view-specific embeddings are regularized toward the
consensus.  The supervised attention over views is replaced — as the paper
prescribes for fair comparison — by equal view weights, making the
consensus the plain average.  Views are separated by edge type (the same
separation TransN uses) so MVE can run on multi-node-type networks here;
its published form assumes a single node type, which is the limitation
Section I discusses.
"""

from __future__ import annotations

import numpy as np

from repro.graph.heterograph import HeteroGraph
from repro.graph.views import separate_views
from repro.skipgram import NoiseDistribution, SkipGramTrainer, extract_pairs
from repro.walks import UniformWalker, build_corpus

from repro.baselines.base import EmbeddingMethod, Embeddings
from repro.baselines.deepwalk import _sgns_epoch


class MVE(EmbeddingMethod):
    """Multi-view embedding with consensus regularization."""

    name = "MVE"

    def __init__(
        self,
        dim: int = 32,
        seed: int = 0,
        walk_length: int = 20,
        walks_per_node: int = 6,
        window: int = 2,
        num_negatives: int = 5,
        epochs: int = 4,
        lr: float = 0.08,
        consensus_pull: float = 0.2,
        batch_size: int = 128,
    ) -> None:
        super().__init__(dim=dim, seed=seed)
        self.walk_length = walk_length
        self.walks_per_node = walks_per_node
        self.window = window
        self.num_negatives = num_negatives
        self.epochs = epochs
        self.lr = lr
        self.consensus_pull = consensus_pull
        self.batch_size = batch_size

    def fit(self, graph: HeteroGraph) -> Embeddings:
        rng = self._rng()
        views = separate_views(graph)
        view_emb = {
            v.edge_type: self._init_matrix(v.num_nodes, rng) for v in views
        }
        trainers = {
            v.edge_type: SkipGramTrainer(view_emb[v.edge_type], rng=rng)
            for v in views
        }
        walkers = {v.edge_type: UniformWalker(v, rng=rng) for v in views}
        noises: dict[str, NoiseDistribution] = {}

        consensus = np.zeros((graph.num_nodes, self.dim))
        counts = np.zeros(graph.num_nodes)
        for view in views:
            for node in view.graph.nodes:
                counts[graph.index_of(node)] += 1

        for _ in range(self.epochs):
            for view in views:
                key = view.edge_type
                corpus = build_corpus(
                    view,
                    walkers[key],
                    length=self.walk_length,
                    walks_per_node_override=self.walks_per_node,
                    rng=rng,
                )
                if key not in noises:
                    freq = np.zeros(view.num_nodes)
                    for node, count in corpus.node_frequencies().items():
                        freq[view.graph.index_of(node)] = count
                    noises[key] = NoiseDistribution(freq, view.num_nodes)
                centers, contexts = [], []
                index_of = view.graph.index_of
                for walk in corpus:
                    for center, context in extract_pairs(walk, self.window):
                        centers.append(index_of(center))
                        contexts.append(index_of(context))
                _sgns_epoch(
                    trainers[key],
                    np.asarray(centers, dtype=np.int64),
                    np.asarray(contexts, dtype=np.int64),
                    noises[key],
                    rng,
                    self.num_negatives,
                    self.lr,
                    self.batch_size,
                )
            # consensus = equal-weight average of view embeddings
            consensus[:] = 0.0
            for view in views:
                matrix = view_emb[view.edge_type]
                for node in view.graph.nodes:
                    consensus[graph.index_of(node)] += matrix[
                        view.graph.index_of(node)
                    ]
            nonzero = counts > 0
            consensus[nonzero] /= counts[nonzero, None]
            # pull every view embedding toward the consensus
            for view in views:
                matrix = view_emb[view.edge_type]
                for node in view.graph.nodes:
                    i = view.graph.index_of(node)
                    g = graph.index_of(node)
                    matrix[i] += self.consensus_pull * (consensus[g] - matrix[i])
        return self._as_dict(graph, consensus)
