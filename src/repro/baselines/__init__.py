"""The seven competitor methods of Section IV-A2, re-implemented.

Every baseline exposes the same interface (:class:`EmbeddingMethod`):
``fit(graph)`` trains and returns ``{node_id: d-dimensional vector}``.

- homogeneous: :class:`LINE` (2nd-order), :class:`DeepWalk`,
  :class:`Node2Vec` — node/edge types ignored, as in the paper's setup;
- path-based heterogeneous: :class:`Metapath2Vec` (user-specified
  metapath), :class:`HIN2Vec` (relation-aware pair classification);
- multi-view: :class:`MVE` (view-specific skip-grams collaborating with a
  consensus embedding; unsupervised equal-weight variant);
- knowledge-graph: :class:`RGCN` (relational GCN + DistMult edge
  reconstruction), :class:`SimplE` (enhanced canonical polyadic
  decomposition).  Both consume unit edge weights, as in the paper.
"""

from repro.baselines.base import EmbeddingMethod, RandomEmbedding
from repro.baselines.deepwalk import DeepWalk
from repro.baselines.hin2vec import HIN2Vec
from repro.baselines.line import LINE
from repro.baselines.metapath2vec import Metapath2Vec
from repro.baselines.mve import MVE
from repro.baselines.node2vec import Node2Vec
from repro.baselines.rgcn import RGCN
from repro.baselines.simple import SimplE

__all__ = [
    "EmbeddingMethod",
    "RandomEmbedding",
    "LINE",
    "DeepWalk",
    "Node2Vec",
    "Metapath2Vec",
    "HIN2Vec",
    "MVE",
    "RGCN",
    "SimplE",
]
