"""R-GCN (Schlichtkrull et al. 2017) with a DistMult decoder.

Two relational graph-convolution layers over learnable entity features:

    H^{l+1} = act( sum_r  A_r H^l W_r^l  +  H^l W_0^l )

with A_r the row-normalized adjacency of relation (edge type) r.  Trained
unsupervised for link reconstruction: DistMult scores
``s(u, r, v) = <h_u, diag(m_r), h_v>`` on observed edges vs corrupted
negatives, with binary cross-entropy.  Per the paper's protocol, edge
weights are ignored (unit weights).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.autograd import Tensor, sigmoid
from repro.graph.heterograph import HeteroGraph
from repro.nn import Adam, Linear, Module

from repro.baselines.base import EmbeddingMethod, Embeddings


class _RGCNLayer(Module):
    """One relational graph-convolution layer."""

    def __init__(
        self,
        adjacencies: list[Tensor],
        in_dim: int,
        out_dim: int,
        rng: np.random.Generator,
    ) -> None:
        self.adjacencies = adjacencies
        self.relation_linears = [
            Linear(in_dim, out_dim, bias=False, rng=rng) for _ in adjacencies
        ]
        self.self_linear = Linear(in_dim, out_dim, bias=False, rng=rng)

    def forward(self, h: Tensor) -> Tensor:
        out = self.self_linear(h)
        for adjacency, linear in zip(self.adjacencies, self.relation_linears):
            out = out + adjacency @ linear(h)
        return out


class RGCN(EmbeddingMethod):
    """Two-layer R-GCN encoder + DistMult edge-reconstruction decoder."""

    name = "R-GCN"

    def __init__(
        self,
        dim: int = 32,
        seed: int = 0,
        hidden_dim: int | None = None,
        epochs: int = 60,
        lr: float = 0.01,
        num_negatives: int = 2,
        edges_per_epoch: int = 512,
        report: str | Path | None = None,
        trace_memory: bool = False,
    ) -> None:
        super().__init__(
            dim=dim, seed=seed, report=report, trace_memory=trace_memory
        )
        self.hidden_dim = hidden_dim or dim
        self.epochs = epochs
        self.lr = lr
        self.num_negatives = num_negatives
        self.edges_per_epoch = edges_per_epoch

    @staticmethod
    def _normalized_adjacency(
        graph: HeteroGraph, edge_type: str
    ) -> np.ndarray:
        n = graph.num_nodes
        a = np.zeros((n, n))
        for edge in graph.edges_of_type(edge_type):
            i, j = graph.index_of(edge.u), graph.index_of(edge.v)
            a[i, j] += 1.0  # unit weights: R-GCN ignores weights
            a[j, i] += 1.0
        row_sums = a.sum(axis=1, keepdims=True)
        row_sums[row_sums == 0] = 1.0
        return a / row_sums

    def fit(self, graph: HeteroGraph) -> Embeddings:
        rng = self._rng()
        edge_types = sorted(graph.edge_types)
        adjacencies = [
            Tensor(self._normalized_adjacency(graph, t)) for t in edge_types
        ]
        n = graph.num_nodes

        features = Tensor(
            rng.normal(0.0, 0.1, size=(n, self.dim)), requires_grad=True
        )
        layer1 = _RGCNLayer(adjacencies, self.dim, self.hidden_dim, rng)
        layer2 = _RGCNLayer(adjacencies, self.hidden_dim, self.dim, rng)
        relation_diag = Tensor(
            rng.normal(0.0, 0.1, size=(len(edge_types), self.dim)),
            requires_grad=True,
        )
        params = (
            [features, relation_diag]
            + list(layer1.parameters())
            + list(layer2.parameters())
        )
        optimizer = Adam(params, lr=self.lr)

        rel_index = {t: i for i, t in enumerate(edge_types)}
        edges = graph.edges
        heads = np.array([graph.index_of(e.u) for e in edges], dtype=np.int64)
        tails = np.array([graph.index_of(e.v) for e in edges], dtype=np.int64)
        rels = np.array([rel_index[e.edge_type] for e in edges], dtype=np.int64)

        final: np.ndarray | None = None
        with self.tracer.span("run", kind="run", num_epochs=self.epochs):
            for epoch in range(self.epochs):
                with self.tracer.span("epoch", kind="epoch", epoch=epoch):
                    h = layer2(layer1(features).relu())
                    batch = min(self.edges_per_epoch, len(edges))
                    pick = rng.choice(len(edges), size=batch, replace=False)
                    pos_h, pos_t, pos_r = heads[pick], tails[pick], rels[pick]
                    # negatives: corrupt the tail uniformly
                    neg_t = rng.integers(n, size=batch * self.num_negatives)
                    neg_h = np.repeat(pos_h, self.num_negatives)
                    neg_r = np.repeat(pos_r, self.num_negatives)

                    all_h = np.concatenate([pos_h, neg_h])
                    all_t = np.concatenate([pos_t, neg_t])
                    all_r = np.concatenate([pos_r, neg_r])
                    targets = np.concatenate(
                        [np.ones(batch), np.zeros(batch * self.num_negatives)]
                    )

                    hu = h.take_rows(all_h)
                    hv = h.take_rows(all_t)
                    mr = relation_diag.take_rows(all_r)
                    scores = (hu * mr * hv).sum(axis=-1)
                    probs = sigmoid(scores)
                    eps = 1e-7
                    t = Tensor(targets)
                    loss = -(
                        t * (probs.clip_min(eps)).log()
                        + (1.0 - t) * ((1.0 - probs).clip_min(eps)).log()
                    ).mean()

                    optimizer.zero_grad()
                    loss.backward()
                    optimizer.step()
                    final = h.data
                    if self.metrics.enabled:
                        self.metrics.observe("rgcn/loss", loss.item())
                        self.metrics.counter("rgcn/edges_sampled", batch)
        assert final is not None
        self._write_report()
        return self._as_dict(graph, final)
