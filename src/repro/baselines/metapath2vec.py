"""Metapath2Vec (Dong et al. 2017): metapath-guided walks + skip-gram.

The caller supplies the metapath (the paper uses "APVPA" on AMiner, "UTU"
on BLOG, "UAKAU" on the app-store networks); nodes whose type never
appears on the metapath cannot be visited and receive zero vectors, which
is the behaviour of the original implementation followed by gap-filling.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.engine import CorpusPipeline, SkipGramPhase
from repro.graph.heterograph import HeteroGraph
from repro.skipgram import SkipGramTrainer
from repro.walks import LockstepWalker, MetapathPolicy, build_corpus
from repro.walks.corpus import WalkCorpus

from repro.baselines.base import EmbeddingMethod, Embeddings


class Metapath2Vec(EmbeddingMethod):
    """Metapath-constrained walks fed to SGNS.

    Walks run on the lockstep engine via
    :class:`repro.walks.MetapathPolicy`; the policy's start restriction
    limits walk starts to nodes of the metapath's first type.
    """

    name = "Metapath2Vec"

    def __init__(
        self,
        metapath: list[str],
        dim: int = 32,
        seed: int = 0,
        walk_length: int = 20,
        walks_per_node: int = 6,
        window: int = 3,
        num_negatives: int = 5,
        epochs: int = 4,
        lr: float = 0.08,
        batch_size: int = 128,
        report: str | Path | None = None,
        trace_memory: bool = False,
    ) -> None:
        super().__init__(
            dim=dim, seed=seed, report=report, trace_memory=trace_memory
        )
        self.metapath = list(metapath)
        self.walk_length = walk_length
        self.walks_per_node = walks_per_node
        self.window = window
        self.num_negatives = num_negatives
        self.epochs = epochs
        self.lr = lr
        self.batch_size = batch_size

    def fit(self, graph: HeteroGraph) -> Embeddings:
        rng = self._rng()
        matrix = self._init_matrix(graph.num_nodes, rng)
        trainer = SkipGramTrainer(matrix, rng=rng)
        walker = LockstepWalker(graph, MetapathPolicy(self.metapath), rng=rng)
        starts = walker.policy.start_indices()
        if starts is None or starts.size == 0:
            raise ValueError(
                f"no nodes of type {self.metapath[0]!r} to start walks from"
            )
        visited = np.zeros(graph.num_nodes, dtype=bool)

        def sample_corpus() -> WalkCorpus:
            corpus = build_corpus(
                graph,
                walker,
                length=self.walk_length,
                walks_per_node_override=self.walks_per_node,
                rng=rng,
            )
            # walks that never left their start node carry no pairs and
            # do not count a node as embedded
            keep = corpus.lengths >= 2
            matrix, lengths = corpus.matrix[keep], corpus.lengths[keep]
            for row, n in zip(matrix, lengths):
                visited[row[: int(n)]] = True
            return WalkCorpus(matrix, lengths, self.walk_length, graph)

        pipeline = CorpusPipeline(
            sample_corpus=sample_corpus,
            num_nodes=graph.num_nodes,
            window=self.window,
            num_negatives=self.num_negatives,
            batch_size=self.batch_size,
            rng=rng,
        )
        self._run_loop(
            [SkipGramPhase("sgns", pipeline, trainer, lr=self.lr)],
            self.epochs,
        )
        # zero out never-visited nodes: the metapath cannot embed them
        matrix[~visited] = 0.0
        return self._as_dict(graph, matrix)
