"""Metapath2Vec (Dong et al. 2017): metapath-guided walks + skip-gram.

The caller supplies the metapath (the paper uses "APVPA" on AMiner, "UTU"
on BLOG, "UAKAU" on the app-store networks); nodes whose type never
appears on the metapath cannot be visited and receive zero vectors, which
is the behaviour of the original implementation followed by gap-filling.
"""

from __future__ import annotations

from pathlib import Path

from repro.engine import CorpusPipeline, SkipGramPhase
from repro.graph.heterograph import HeteroGraph, NodeId
from repro.skipgram import SkipGramTrainer
from repro.walks import MetapathWalker
from repro.walks.corpus import WalkCorpus

from repro.baselines.base import EmbeddingMethod, Embeddings


class Metapath2Vec(EmbeddingMethod):
    """Metapath-constrained walks fed to SGNS."""

    name = "Metapath2Vec"

    def __init__(
        self,
        metapath: list[str],
        dim: int = 32,
        seed: int = 0,
        walk_length: int = 20,
        walks_per_node: int = 6,
        window: int = 3,
        num_negatives: int = 5,
        epochs: int = 4,
        lr: float = 0.08,
        batch_size: int = 128,
        report: str | Path | None = None,
        trace_memory: bool = False,
    ) -> None:
        super().__init__(
            dim=dim, seed=seed, report=report, trace_memory=trace_memory
        )
        self.metapath = list(metapath)
        self.walk_length = walk_length
        self.walks_per_node = walks_per_node
        self.window = window
        self.num_negatives = num_negatives
        self.epochs = epochs
        self.lr = lr
        self.batch_size = batch_size

    def fit(self, graph: HeteroGraph) -> Embeddings:
        rng = self._rng()
        matrix = self._init_matrix(graph.num_nodes, rng)
        trainer = SkipGramTrainer(matrix, rng=rng)
        walker = MetapathWalker(graph, self.metapath, rng=rng)
        starts = walker.start_nodes()
        if not starts:
            raise ValueError(
                f"no nodes of type {self.metapath[0]!r} to start walks from"
            )
        visited: set[NodeId] = set()

        def sample_corpus() -> WalkCorpus:
            walks = []
            for node in starts:
                for _ in range(self.walks_per_node):
                    walk = walker.walk(node, self.walk_length)
                    if len(walk) >= 2:
                        walks.append(walk)
                        visited.update(walk)
            return WalkCorpus.from_paths(walks, self.walk_length, graph)

        pipeline = CorpusPipeline(
            sample_corpus=sample_corpus,
            num_nodes=graph.num_nodes,
            window=self.window,
            num_negatives=self.num_negatives,
            batch_size=self.batch_size,
            rng=rng,
        )
        self._run_loop(
            [SkipGramPhase("sgns", pipeline, trainer, lr=self.lr)],
            self.epochs,
        )
        # zero out never-visited nodes: the metapath cannot embed them
        for node in graph.nodes:
            if node not in visited:
                matrix[graph.index_of(node)] = 0.0
        return self._as_dict(graph, matrix)
