"""SimplE (Kazemi & Poole 2018): fully-expressive CP-style KG embedding.

Every entity e has a head vector ``h_e`` and a tail vector ``t_e``; every
relation r has a forward vector ``v_r`` and an inverse vector ``v_r'``.
A triple (u, r, v) is scored by

    s(u, r, v) = 1/2 ( <h_u, v_r, t_v> + <h_v, v_r', t_u> )

and trained with logistic loss over observed edges vs corrupted negatives.
Per the paper's protocol edge weights are ignored.  The node embedding
reported downstream is the concatenation ``[h_e ; t_e]`` with each half of
size ``dim // 2`` — SimplE's representation of an entity *is* the pair, and
concatenating keeps the output dimensionality equal to every other
method's.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.graph.heterograph import HeteroGraph

from repro.baselines.base import EmbeddingMethod, Embeddings
from repro.baselines.hin2vec import _mean_update, _sigmoid


class SimplE(EmbeddingMethod):
    """SimplE with logistic loss and uniform negative corruption."""

    name = "SimplE"

    def __init__(
        self,
        dim: int = 32,
        seed: int = 0,
        epochs: int = 150,
        lr: float = 0.1,
        num_negatives: int = 2,
        batch_size: int = 512,
        l2: float = 1e-5,
        report: str | Path | None = None,
        trace_memory: bool = False,
    ) -> None:
        super().__init__(
            dim=dim, seed=seed, report=report, trace_memory=trace_memory
        )
        if dim % 2:
            raise ValueError("SimplE needs an even dim (head/tail halves)")
        self.half_dim = dim // 2
        self.epochs = epochs
        self.lr = lr
        self.num_negatives = num_negatives
        self.batch_size = batch_size
        self.l2 = l2

    def fit(self, graph: HeteroGraph) -> Embeddings:
        rng = self._rng()
        n = graph.num_nodes
        edge_types = sorted(graph.edge_types)
        rel_index = {t: i for i, t in enumerate(edge_types)}

        scale = 6.0 / np.sqrt(self.half_dim)
        head = rng.uniform(-scale, scale, size=(n, self.half_dim))
        tail = rng.uniform(-scale, scale, size=(n, self.half_dim))
        rel_fwd = rng.uniform(
            -scale, scale, size=(len(edge_types), self.half_dim)
        )
        rel_inv = rng.uniform(
            -scale, scale, size=(len(edge_types), self.half_dim)
        )

        edges = graph.edges
        us = np.array([graph.index_of(e.u) for e in edges], dtype=np.int64)
        vs = np.array([graph.index_of(e.v) for e in edges], dtype=np.int64)
        rs = np.array([rel_index[e.edge_type] for e in edges], dtype=np.int64)

        with self.tracer.span("run", kind="run", num_epochs=self.epochs):
            for epoch in range(self.epochs):
                with self.tracer.span("epoch", kind="epoch", epoch=epoch):
                    order = rng.permutation(len(edges))
                    for start in range(0, len(edges), self.batch_size):
                        pick = order[start : start + self.batch_size]
                        b = pick.size
                        batches = [(us[pick], vs[pick], rs[pick], np.ones(b))]
                        for _ in range(self.num_negatives):
                            corrupt_tail = rng.random(b) < 0.5
                            nu = np.where(
                                corrupt_tail, us[pick], rng.integers(n, size=b)
                            )
                            nv = np.where(
                                corrupt_tail, rng.integers(n, size=b), vs[pick]
                            )
                            batches.append((nu, nv, rs[pick], np.zeros(b)))
                        for bu, bv, br, target in batches:
                            self._step(
                                head, tail, rel_fwd, rel_inv, bu, bv, br, target
                            )
                        self.metrics.counter(
                            "simple/triples_seen",
                            sum(part[0].size for part in batches),
                        )

        final = np.hstack([head, tail])
        self._write_report()
        return self._as_dict(graph, final)

    def _step(
        self,
        head: np.ndarray,
        tail: np.ndarray,
        rel_fwd: np.ndarray,
        rel_inv: np.ndarray,
        us: np.ndarray,
        vs: np.ndarray,
        rs: np.ndarray,
        target: np.ndarray,
    ) -> None:
        hu, tv = head[us], tail[vs]
        hv, tu = head[vs], tail[us]
        vr, vr_inv = rel_fwd[rs], rel_inv[rs]

        score = 0.5 * (
            np.einsum("bd,bd,bd->b", hu, vr, tv)
            + np.einsum("bd,bd,bd->b", hv, vr_inv, tu)
        )
        prob = _sigmoid(score)
        dscore = 0.5 * (prob - target)[:, None]

        grad_hu = dscore * vr * tv + self.l2 * hu
        grad_tv = dscore * vr * hu + self.l2 * tv
        grad_hv = dscore * vr_inv * tu + self.l2 * hv
        grad_tu = dscore * vr_inv * hv + self.l2 * tu
        grad_vr = dscore * hu * tv + self.l2 * vr
        grad_vr_inv = dscore * hv * tu + self.l2 * vr_inv

        _mean_update(head, np.concatenate([us, vs]),
                     np.concatenate([grad_hu, grad_hv]), self.lr)
        _mean_update(tail, np.concatenate([vs, us]),
                     np.concatenate([grad_tv, grad_tu]), self.lr)
        _mean_update(rel_fwd, rs, grad_vr, self.lr)
        _mean_update(rel_inv, rs, grad_vr_inv, self.lr)
