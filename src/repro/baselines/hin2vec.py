"""HIN2Vec (Fu et al. 2017), core model.

HIN2Vec casts embedding learning as binary classification: does node pair
(x, y) carry relation r?  Here r is the sequence of *edge types* connecting
x to y along a sampled walk (all meta-paths up to a maximum hop count are
enumerated from the data — the paper's point that HIN2Vec needs only a
length bound, not a hand-picked metapath).  The score is

    P(r | x, y) = sigmoid( sum_d  x_d * y_d * f(r_d) ),   f = sigmoid,

where f keeps the relation vector in (0, 1) (the paper's binary-step
regularization, in its differentiable form).  Positive pairs come from
walks; negatives corrupt y with a random node of the same type.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.graph.heterograph import HeteroGraph, NodeId

from repro.baselines.base import EmbeddingMethod, Embeddings


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    ex = np.exp(x[~positive])
    out[~positive] = ex / (1.0 + ex)
    return out


class HIN2Vec(EmbeddingMethod):
    """Node + relation embeddings trained by pair classification."""

    name = "HIN2VEC"

    def __init__(
        self,
        dim: int = 32,
        seed: int = 0,
        max_hops: int = 2,
        walk_length: int = 20,
        walks_per_node: int = 6,
        num_negatives: int = 4,
        epochs: int = 4,
        lr: float = 0.08,
        batch_size: int = 256,
        report: str | Path | None = None,
        trace_memory: bool = False,
    ) -> None:
        super().__init__(
            dim=dim, seed=seed, report=report, trace_memory=trace_memory
        )
        if max_hops < 1:
            raise ValueError("max_hops must be >= 1")
        self.max_hops = max_hops
        self.walk_length = walk_length
        self.walks_per_node = walks_per_node
        self.num_negatives = num_negatives
        self.epochs = epochs
        self.lr = lr
        self.batch_size = batch_size
        self.relation_vocabulary: dict[tuple[str, ...], int] = {}

    # ------------------------------------------------------------------
    def _typed_walk(
        self, graph: HeteroGraph, start: NodeId, rng: np.random.Generator
    ) -> tuple[list[int], list[str]]:
        """A uniform walk that also records the edge types it traverses."""
        nodes = [graph.index_of(start)]
        types: list[str] = []
        current = start
        for _ in range(self.walk_length - 1):
            incident = graph.incident(current)
            if not incident:
                break
            nbr, _, edge_type = incident[int(rng.integers(len(incident)))]
            nodes.append(graph.index_of(nbr))
            types.append(edge_type)
            current = nbr
        return nodes, types

    def _collect_pairs(
        self, graph: HeteroGraph, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(x, y, relation_id) triples from fresh walks."""
        xs: list[int] = []
        ys: list[int] = []
        rels: list[int] = []
        for node in graph.nodes:
            if graph.degree(node) == 0:
                continue
            for _ in range(self.walks_per_node):
                nodes, types = self._typed_walk(graph, node, rng)
                for i in range(len(nodes)):
                    for hops in range(1, self.max_hops + 1):
                        j = i + hops
                        if j >= len(nodes):
                            break
                        relation = tuple(types[i:j])
                        rel_id = self.relation_vocabulary.setdefault(
                            relation, len(self.relation_vocabulary)
                        )
                        xs.append(nodes[i])
                        ys.append(nodes[j])
                        rels.append(rel_id)
        return (
            np.asarray(xs, dtype=np.int64),
            np.asarray(ys, dtype=np.int64),
            np.asarray(rels, dtype=np.int64),
        )

    # ------------------------------------------------------------------
    def fit(self, graph: HeteroGraph) -> Embeddings:
        rng = self._rng()
        nodes_by_type = {
            t: np.array([graph.index_of(n) for n in graph.nodes_of_type(t)])
            for t in graph.node_types
        }
        type_of_index = np.array(
            [graph.node_type(n) for n in graph.nodes], dtype=object
        )

        node_emb = self._init_matrix(graph.num_nodes, rng)
        relation_emb: np.ndarray | None = None

        with self.tracer.span("run", kind="run", num_epochs=self.epochs):
            for epoch in range(self.epochs):
                with self.tracer.span("epoch", kind="epoch", epoch=epoch):
                    xs, ys, rels = self._collect_pairs(graph, rng)
                    if xs.size == 0:
                        break
                    if relation_emb is None or relation_emb.shape[0] < len(
                        self.relation_vocabulary
                    ):
                        new = self._init_matrix(
                            len(self.relation_vocabulary), rng
                        )
                        if relation_emb is not None:
                            new[: relation_emb.shape[0]] = relation_emb
                        relation_emb = new
                    order = rng.permutation(xs.size)
                    xs, ys, rels = xs[order], ys[order], rels[order]
                    for start in range(0, xs.size, self.batch_size):
                        end = min(start + self.batch_size, xs.size)
                        self._train_batch(
                            node_emb,
                            relation_emb,
                            xs[start:end],
                            ys[start:end],
                            rels[start:end],
                            nodes_by_type,
                            type_of_index,
                            rng,
                        )
                    if self.metrics.enabled:
                        self.metrics.counter("hin2vec/pairs", xs.size)
                        self.metrics.gauge(
                            "hin2vec/relation_vocabulary",
                            len(self.relation_vocabulary),
                        )
        self._write_report()
        return self._as_dict(graph, node_emb)

    def _train_batch(
        self,
        node_emb: np.ndarray,
        relation_emb: np.ndarray,
        xs: np.ndarray,
        ys: np.ndarray,
        rels: np.ndarray,
        nodes_by_type: dict[str, np.ndarray],
        type_of_index: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        """One positive pass plus ``num_negatives`` corrupted passes."""
        batches = [(xs, ys, rels, 1.0)]
        for _ in range(self.num_negatives):
            corrupted = np.array(
                [
                    nodes_by_type[type_of_index[y]][
                        int(rng.integers(nodes_by_type[type_of_index[y]].size))
                    ]
                    for y in ys
                ],
                dtype=np.int64,
            )
            batches.append((xs, corrupted, rels, 0.0))
        for bx, by, br, target in batches:
            wx = node_emb[bx]
            wy = node_emb[by]
            wr = relation_emb[br]
            fr = _sigmoid(wr)
            score = np.einsum("bd,bd,bd->b", wx, wy, fr)
            prob = _sigmoid(score)
            dscore = (prob - target)[:, None]  # (B, 1)
            grad_x = dscore * wy * fr
            grad_y = dscore * wx * fr
            grad_r = dscore * wx * wy * fr * (1.0 - fr)
            _mean_update(node_emb, bx, grad_x, self.lr)
            _mean_update(node_emb, by, grad_y, self.lr)
            _mean_update(relation_emb, br, grad_r, self.lr)


def _mean_update(
    matrix: np.ndarray, rows: np.ndarray, grads: np.ndarray, lr: float
) -> None:
    unique, inverse, counts = np.unique(
        rows, return_inverse=True, return_counts=True
    )
    aggregated = np.zeros((unique.size, matrix.shape[1]))
    np.add.at(aggregated, inverse, grads)
    aggregated /= counts[:, None]
    matrix[unique] -= lr * aggregated
