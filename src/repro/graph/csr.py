"""Flat CSR adjacency shared by every walk engine.

The walkers used to build per-node Python lists of neighbour/weight
arrays — one O(V+E) build *per walker*, with per-step indexing going
through list lookups.  This module stores the same information once per
graph in four flat arrays (the classic CSR layout):

- ``indptr``  (V+1,) — node ``i``'s incident edges live in the half-open
  slot range ``indptr[i]:indptr[i+1]``;
- ``indices`` (2E,)  — neighbour index per slot;
- ``weights`` (2E,)  — edge weight per slot;

plus three per-node caches the walkers need on every step: ``degrees``,
``weight_sums`` (the pi_1 normalizer of Equation 6) and ``delta`` (the
incident-weight spread of Equation 7).

Alias tables for O(1) pi_1 draws are *flattened* into two slot-aligned
arrays (``alias_prob``/``alias_local``) so that a single gather serves an
arbitrary batch of current nodes.  They are built lazily on first access:
uniform walkers never touch weights, so they never pay for the tables.

Type-indexed column views serve the pluggable walk policies
(:mod:`repro.walks.policies`): ``node_type_codes`` maps every node to a
dense type code, ``slot_type_codes``/``slot_edge_type_codes`` annotate
every CSR slot with the neighbour's node-type code and the edge's
edge-type code, and ``edge_keys`` is a sorted packed-pair table enabling
vectorized "is (u, v) an edge?" membership tests (the second-order
node2vec distance-1 check).  All of them are lazy: policies that never
look at types never pay for the columns.

One instance is cached per graph (:func:`csr_adjacency`); every walker —
scalar or batched — over the same graph shares the same build.

Instances are also cheaply picklable: :meth:`CSRAdjacency.__reduce__`
ships only the six core arrays (plus whichever type columns were already
built) and rebuilds a *detached* adjacency (``graph=None``) via
:meth:`CSRAdjacency.from_arrays` — never the graph object, never the
alias tables.  That keeps parallel worker dispatch
(:mod:`repro.engine.parallel`) proportional to the payload actually
needed, and lets workers reconstruct an adjacency directly over
shared-memory arrays without any graph at all.
"""

from __future__ import annotations

import numpy as np

from repro.graph.alias import AliasSampler
from repro.graph.heterograph import HeteroGraph

_CACHE_ATTR = "_csr_adjacency_cache"


class CSRAdjacency:
    """Flat adjacency arrays of one :class:`HeteroGraph` in index space."""

    def __init__(self, graph: HeteroGraph) -> None:
        self.graph = graph
        n = graph.num_nodes
        degrees = np.fromiter(
            (graph.degree(node) for node in graph.nodes),
            dtype=np.int64,
            count=n,
        )
        self.degrees = degrees
        self.indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=self.indptr[1:])
        num_slots = int(self.indptr[-1])
        self.indices = np.empty(num_slots, dtype=np.int64)
        self.weights = np.empty(num_slots, dtype=np.float64)
        index_of = graph.index_of
        pos = 0
        for node in graph.nodes:
            for nbr, weight, _ in graph.incident(node):
                self.indices[pos] = index_of(nbr)
                self.weights[pos] = weight
                pos += 1

        # per-node reductions over the weight segments
        self.weight_sums = np.zeros(n, dtype=np.float64)
        self.delta = np.zeros(n, dtype=np.float64)
        nonempty = degrees > 0
        if num_slots:
            starts = self.indptr[:-1][nonempty]
            self.weight_sums[nonempty] = np.add.reduceat(self.weights, starts)
            self.delta[nonempty] = np.maximum.reduceat(
                self.weights, starts
            ) - np.minimum.reduceat(self.weights, starts)

        self._alias: tuple[np.ndarray, np.ndarray] | None = None
        self._node_types: tuple[np.ndarray, tuple[str, ...]] | None = None
        self._slot_type_codes: np.ndarray | None = None
        self._slot_edge_types: tuple[np.ndarray, tuple[str, ...]] | None = None
        self._edge_keys: np.ndarray | None = None

    # ------------------------------------------------------------------
    # detached construction & cheap pickling
    # ------------------------------------------------------------------
    #: the arrays every walk needs; the shared-memory layer ships exactly
    #: these plus whichever optional columns the policy declares
    CORE_FIELDS = (
        "indptr",
        "indices",
        "weights",
        "degrees",
        "weight_sums",
        "delta",
    )

    @classmethod
    def from_arrays(
        cls,
        *,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
        degrees: np.ndarray,
        weight_sums: np.ndarray,
        delta: np.ndarray,
        alias: tuple[np.ndarray, np.ndarray] | None = None,
        type_names: tuple[str, ...] | None = None,
        node_type_codes: np.ndarray | None = None,
        slot_type_codes: np.ndarray | None = None,
        edge_type_names: tuple[str, ...] | None = None,
        slot_edge_type_codes: np.ndarray | None = None,
        edge_keys: np.ndarray | None = None,
        graph: HeteroGraph | None = None,
    ) -> "CSRAdjacency":
        """Assemble an adjacency directly from its flat arrays.

        The worker-side entry point of the parallel layer: arrays may be
        views over shared memory, ``graph=None`` leaves the instance
        *detached* — everything derivable from the arrays works, but lazy
        columns that need the graph (type tables not passed in) raise.
        """
        self = cls.__new__(cls)
        self.graph = graph
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        self.degrees = degrees
        self.weight_sums = weight_sums
        self.delta = delta
        self._alias = alias
        self._node_types = (
            None
            if node_type_codes is None or type_names is None
            else (node_type_codes, tuple(type_names))
        )
        self._slot_type_codes = slot_type_codes
        self._slot_edge_types = (
            None
            if slot_edge_type_codes is None or edge_type_names is None
            else (slot_edge_type_codes, tuple(edge_type_names))
        )
        self._edge_keys = edge_keys
        return self

    def __reduce__(self):
        """Pickle as a detached rebuild-from-arrays call.

        Deliberately excludes the graph (workers never need it) and the
        alias tables (cheaper to rebuild or ship via shared memory than to
        serialize); already-built type columns ride along so a pickled
        adjacency keeps serving type-aware policies.
        """
        payload: dict = {
            name: getattr(self, name) for name in self.CORE_FIELDS
        }
        if self._node_types is not None:
            payload["node_type_codes"], payload["type_names"] = (
                self._node_types
            )
        if self._slot_type_codes is not None:
            payload["slot_type_codes"] = self._slot_type_codes
        if self._slot_edge_types is not None:
            (
                payload["slot_edge_type_codes"],
                payload["edge_type_names"],
            ) = self._slot_edge_types
        if self._edge_keys is not None:
            payload["edge_keys"] = self._edge_keys
        return (_rebuild_csr, (payload,))

    @property
    def detached(self) -> bool:
        """Whether this adjacency carries no graph object."""
        return self.graph is None

    def _require_graph(self, what: str) -> HeteroGraph:
        if self.graph is None:
            raise RuntimeError(
                f"cannot build {what} on a detached CSRAdjacency; pass the "
                "column through from_arrays() or rebuild from the graph"
            )
        return self.graph

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.degrees.size

    def neighbors(self, i: int) -> np.ndarray:
        """Neighbour indices of node ``i`` (a CSR segment view)."""
        return self.indices[self.indptr[i] : self.indptr[i + 1]]

    def segment_weights(self, i: int) -> np.ndarray:
        """Incident weights of node ``i`` (a CSR segment view)."""
        return self.weights[self.indptr[i] : self.indptr[i + 1]]

    # ------------------------------------------------------------------
    def alias_tables(self) -> tuple[np.ndarray, np.ndarray]:
        """Slot-aligned ``(alias_prob, alias_local)``, built on first use.

        For node ``i`` with degree ``d``, drawing ``slot ~ U{0..d-1}`` and
        ``coin ~ U[0,1)`` then picking ``slot`` if
        ``coin < alias_prob[indptr[i] + slot]`` else
        ``alias_local[indptr[i] + slot]`` yields a neighbour *slot*
        distributed proportionally to the segment's weights — the alias
        method, gatherable for whole batches of current nodes at once.
        """
        if self._alias is None:
            prob = np.ones(self.weights.size, dtype=np.float64)
            local = np.zeros(self.weights.size, dtype=np.int64)
            for i in np.flatnonzero(self.degrees):
                lo, hi = self.indptr[i], self.indptr[i + 1]
                segment = self.weights[lo:hi]
                prob[lo:hi], local[lo:hi] = AliasSampler._build(
                    segment / segment.sum()
                )
            self._alias = (prob, local)
        return self._alias

    @property
    def alias_built(self) -> bool:
        """Whether the lazy alias tables exist yet (for tests)."""
        return self._alias is not None

    # -- type-indexed column views (lazy) ------------------------------
    def _type_table(self) -> tuple[np.ndarray, tuple[str, ...]]:
        if self._node_types is None:
            graph = self._require_graph("the node-type table")
            names = tuple(sorted(graph.node_types))
            code = {name: k for k, name in enumerate(names)}
            codes = np.fromiter(
                (code[graph.node_type(node)] for node in graph.nodes),
                dtype=np.int64,
                count=self.num_nodes,
            )
            self._node_types = (codes, names)
        return self._node_types

    @property
    def type_names(self) -> tuple[str, ...]:
        """Node-type names in code order (``code == position``)."""
        return self._type_table()[1]

    @property
    def node_type_codes(self) -> np.ndarray:
        """(V,) dense node-type code per node index."""
        return self._type_table()[0]

    def type_code(self, name: str) -> int:
        """The dense code of node type ``name``."""
        try:
            return self.type_names.index(name)
        except ValueError:
            raise KeyError(
                f"unknown node type {name!r}; graph has {self.type_names}"
            ) from None

    @property
    def slot_type_codes(self) -> np.ndarray:
        """(2E,) node-type code of the *neighbour* in each CSR slot."""
        if self._slot_type_codes is None:
            self._slot_type_codes = self.node_type_codes[self.indices]
        return self._slot_type_codes

    def _edge_type_table(self) -> tuple[np.ndarray, tuple[str, ...]]:
        if self._slot_edge_types is None:
            graph = self._require_graph("the edge-type table")
            names = tuple(sorted(graph.edge_types))
            code = {name: k for k, name in enumerate(names)}
            codes = np.empty(self.indices.size, dtype=np.int64)
            pos = 0
            for node in graph.nodes:
                for _, _, edge_type in graph.incident(node):
                    codes[pos] = code[edge_type]
                    pos += 1
            self._slot_edge_types = (codes, names)
        return self._slot_edge_types

    @property
    def edge_type_names(self) -> tuple[str, ...]:
        """Edge-type names in code order (``code == position``)."""
        return self._edge_type_table()[1]

    @property
    def slot_edge_type_codes(self) -> np.ndarray:
        """(2E,) edge-type code of the edge behind each CSR slot."""
        return self._edge_type_table()[0]

    @property
    def edge_keys(self) -> np.ndarray:
        """Sorted packed ``u * V + v`` keys, one per directed slot.

        Supports vectorized adjacency-membership tests
        (:meth:`has_edges`) via binary search — the node2vec
        distance-1 check over whole candidate batches.
        """
        if self._edge_keys is None:
            src = np.repeat(
                np.arange(self.num_nodes, dtype=np.int64), self.degrees
            )
            self._edge_keys = np.sort(
                src * np.int64(self.num_nodes) + self.indices
            )
        return self._edge_keys

    def has_edges(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        """Vectorized membership: True where ``(u, v)`` is an edge.

        ``us``/``vs`` are broadcast against each other; both must hold
        valid node indices.
        """
        us, vs = np.broadcast_arrays(
            np.asarray(us, dtype=np.int64), np.asarray(vs, dtype=np.int64)
        )
        keys = us * np.int64(self.num_nodes) + vs
        table = self.edge_keys
        if table.size == 0:
            return np.zeros(keys.shape, dtype=bool)
        pos = np.searchsorted(table, keys)
        found = pos < table.size
        out = np.zeros(keys.shape, dtype=bool)
        out[found] = table[pos[found]] == keys[found]
        return out


def csr_adjacency(graph: HeteroGraph) -> CSRAdjacency:
    """The per-graph cached :class:`CSRAdjacency`.

    Rebuilt only when the (append-only) graph gained nodes or edges since
    the cached build; otherwise every caller shares one instance.
    """
    cached = getattr(graph, _CACHE_ATTR, None)
    if (
        cached is not None
        # identity guard: a cache resurrected by pickling/deepcopy is
        # detached (graph=None) or points at the original graph — either
        # way it must not be reused for a different graph object
        and cached.graph is graph
        and cached.num_nodes == graph.num_nodes
        and cached.indices.size == 2 * graph.num_edges
    ):
        return cached
    csr = CSRAdjacency(graph)
    setattr(graph, _CACHE_ATTR, csr)
    return csr


def _rebuild_csr(payload: dict) -> CSRAdjacency:
    """Unpickle hook of :meth:`CSRAdjacency.__reduce__`."""
    return CSRAdjacency.from_arrays(**payload)
