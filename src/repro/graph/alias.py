"""Walker's alias method for O(1) discrete sampling.

Every random-walk engine in this repository draws the next node from a
categorical distribution over a node's neighbours.  The alias method turns
an arbitrary categorical distribution over ``n`` outcomes into two tables
that can be sampled in O(1) after O(n) setup, which is what makes walk
corpora over large views affordable.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


class AliasSampler:
    """Draw indices ``0..n-1`` with probability proportional to ``weights``.

    Example:
        >>> rng = np.random.default_rng(0)
        >>> sampler = AliasSampler([1.0, 3.0])
        >>> draws = sampler.sample(rng, size=10_000)
        >>> 0.70 < (draws == 1).mean() < 0.80
        True
    """

    def __init__(self, weights: Sequence[float]) -> None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 1 or weights.size == 0:
            raise ValueError("weights must be a non-empty 1-D sequence")
        if np.any(weights < 0) or not np.all(np.isfinite(weights)):
            raise ValueError("weights must be finite and non-negative")
        total = weights.sum()
        if total <= 0:
            raise ValueError("at least one weight must be positive")
        self._n = weights.size
        self._prob, self._alias = self._build(weights / total)

    @staticmethod
    def _build(probs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        n = probs.size
        scaled = probs * n
        prob = np.zeros(n, dtype=np.float64)
        alias = np.zeros(n, dtype=np.int64)
        small = [i for i in range(n) if scaled[i] < 1.0]
        large = [i for i in range(n) if scaled[i] >= 1.0]
        scaled = scaled.copy()
        while small and large:
            s = small.pop()
            l = large.pop()
            prob[s] = scaled[s]
            alias[s] = l
            scaled[l] = scaled[l] - (1.0 - scaled[s])
            if scaled[l] < 1.0:
                small.append(l)
            else:
                large.append(l)
        # leftovers are exactly 1 up to floating error
        for i in large:
            prob[i] = 1.0
        for i in small:
            prob[i] = 1.0
        return prob, alias

    @property
    def num_outcomes(self) -> int:
        return self._n

    def sample(self, rng: np.random.Generator, size: int | None = None):
        """Draw one index (``size is None``) or an array of indices."""
        if size is None:
            i = int(rng.integers(self._n))
            if rng.random() < self._prob[i]:
                return i
            return int(self._alias[i])
        idx = rng.integers(self._n, size=size)
        flips = rng.random(size) < self._prob[idx]
        return np.where(flips, idx, self._alias[idx])

    def probabilities(self) -> np.ndarray:
        """Reconstruct the normalized probability vector (for testing)."""
        probs = np.zeros(self._n, dtype=np.float64)
        for i in range(self._n):
            probs[i] += self._prob[i]
            probs[self._alias[i]] += 1.0 - self._prob[i]
        return probs / self._n
