"""Typed, weighted, undirected heterogeneous graph (Definition 1).

A :class:`HeteroGraph` stores nodes identified by arbitrary hashable IDs.
Every node has exactly one node type and every edge has exactly one edge
type plus a strictly positive weight.  The structure is append-only (nodes
and edges can be added but not removed); the evaluation pipelines that need
edge removal (e.g. link prediction) build a new graph instead, which keeps
the adjacency caches trivially consistent.

Internally nodes are mapped to dense integer indices so that the random-walk
and embedding code can work with numpy arrays throughout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Mapping, Sequence

import numpy as np

NodeId = Hashable


@dataclass(frozen=True)
class Edge:
    """A single undirected edge.

    ``u`` and ``v`` are node IDs; the edge is stored once with ``u`` and
    ``v`` in insertion order but represents the unordered pair ``{u, v}``.
    """

    u: NodeId
    v: NodeId
    edge_type: str
    weight: float = 1.0

    def endpoints(self) -> tuple[NodeId, NodeId]:
        """Return the unordered endpoints in insertion order."""
        return (self.u, self.v)

    def other(self, node: NodeId) -> NodeId:
        """Return the endpoint that is not ``node``.

        Raises:
            ValueError: if ``node`` is not an endpoint of this edge.
        """
        if node == self.u:
            return self.v
        if node == self.v:
            return self.u
        raise ValueError(f"node {node!r} is not an endpoint of {self!r}")


class HeteroGraph:
    """An undirected heterogeneous network G = {V, E, C_V, C_E}.

    Example:
        >>> g = HeteroGraph()
        >>> g.add_node("a1", "author")
        >>> g.add_node("p1", "paper")
        >>> g.add_edge("a1", "p1", "authorship", weight=1.0)
        >>> g.num_nodes, g.num_edges
        (2, 1)
        >>> sorted(g.node_types), sorted(g.edge_types)
        (['author', 'paper'], ['authorship'])
    """

    def __init__(self) -> None:
        self._node_type: dict[NodeId, str] = {}
        self._index: dict[NodeId, int] = {}
        self._nodes: list[NodeId] = []
        self._edges: list[Edge] = []
        # adjacency: node id -> list of (neighbor id, weight, edge type)
        self._adj: dict[NodeId, list[tuple[NodeId, float, str]]] = {}
        self._edge_types: set[str] = set()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: NodeId, node_type: str) -> None:
        """Add ``node`` with the given type.

        Re-adding an existing node with the same type is a no-op; re-adding
        it with a different type raises ``ValueError`` because a node has
        exactly one type in Definition 1.
        """
        existing = self._node_type.get(node)
        if existing is not None:
            if existing != node_type:
                raise ValueError(
                    f"node {node!r} already has type {existing!r}; "
                    f"cannot retype it to {node_type!r}"
                )
            return
        self._node_type[node] = node_type
        self._index[node] = len(self._nodes)
        self._nodes.append(node)
        self._adj[node] = []

    def add_edge(
        self,
        u: NodeId,
        v: NodeId,
        edge_type: str,
        weight: float = 1.0,
        u_type: str | None = None,
        v_type: str | None = None,
    ) -> None:
        """Add an undirected edge of the given type and weight.

        If ``u_type``/``v_type`` are provided, missing endpoints are created
        on the fly; otherwise both endpoints must already exist.

        Raises:
            ValueError: on non-positive weight, self loops, or unknown
                endpoints when no type is given.
        """
        if weight <= 0:
            raise ValueError(f"edge weight must be positive, got {weight}")
        if u == v:
            raise ValueError(f"self loops are not allowed (node {u!r})")
        if u_type is not None:
            self.add_node(u, u_type)
        if v_type is not None:
            self.add_node(v, v_type)
        if u not in self._node_type:
            raise ValueError(f"unknown node {u!r}; add it first or pass u_type")
        if v not in self._node_type:
            raise ValueError(f"unknown node {v!r}; add it first or pass v_type")
        self._edges.append(Edge(u, v, edge_type, weight))
        self._adj[u].append((v, weight, edge_type))
        self._adj[v].append((u, weight, edge_type))
        self._edge_types.add(edge_type)

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple[NodeId, NodeId, str, float]],
        node_types: Mapping[NodeId, str],
    ) -> "HeteroGraph":
        """Build a graph from ``(u, v, edge_type, weight)`` tuples.

        Every endpoint must appear in ``node_types``.  Isolated nodes can be
        included by listing them in ``node_types`` without any edge.
        """
        graph = cls()
        for node, node_type in node_types.items():
            graph.add_node(node, node_type)
        for u, v, edge_type, weight in edges:
            graph.add_edge(u, v, edge_type, weight)
        return graph

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    @property
    def nodes(self) -> Sequence[NodeId]:
        """All node IDs in insertion order."""
        return tuple(self._nodes)

    @property
    def edges(self) -> Sequence[Edge]:
        """All edges in insertion order."""
        return tuple(self._edges)

    @property
    def node_types(self) -> frozenset[str]:
        """The set C_V of node types present in the graph."""
        return frozenset(self._node_type.values())

    @property
    def edge_types(self) -> frozenset[str]:
        """The set C_E of edge types present in the graph."""
        return frozenset(self._edge_types)

    def has_node(self, node: NodeId) -> bool:
        return node in self._node_type

    def node_type(self, node: NodeId) -> str:
        """Return the type zeta(v) of ``node``."""
        try:
            return self._node_type[node]
        except KeyError:
            raise KeyError(f"unknown node {node!r}") from None

    def index_of(self, node: NodeId) -> int:
        """Return the dense integer index of ``node`` (stable, 0-based)."""
        try:
            return self._index[node]
        except KeyError:
            raise KeyError(f"unknown node {node!r}") from None

    def node_at(self, index: int) -> NodeId:
        """Inverse of :meth:`index_of`."""
        return self._nodes[index]

    def indices_of(
        self, nodes: Iterable[NodeId], missing: int = -1
    ) -> np.ndarray:
        """Dense index array for a sequence of nodes in one pass.

        Unknown nodes map to ``missing`` instead of raising, which makes
        the result directly usable as a gather table (the cross-view
        trainer re-bases whole walk matrices through these).
        """
        nodes = nodes if isinstance(nodes, (list, tuple)) else list(nodes)
        get = self._index.get
        return np.fromiter(
            (get(node, missing) for node in nodes),
            dtype=np.int64,
            count=len(nodes),
        )

    def degree(self, node: NodeId) -> int:
        """Number of incident edges (parallel edges counted separately)."""
        return len(self._adj[node])

    def weighted_degree(self, node: NodeId) -> float:
        """Sum of incident edge weights."""
        return sum(weight for _, weight, _ in self._adj[node])

    def neighbors(self, node: NodeId) -> list[NodeId]:
        """Neighbor IDs of ``node`` (with multiplicity for parallel edges)."""
        return [nbr for nbr, _, _ in self._adj[node]]

    def incident(self, node: NodeId) -> list[tuple[NodeId, float, str]]:
        """Incident ``(neighbor, weight, edge_type)`` triples of ``node``."""
        return list(self._adj[node])

    def nodes_of_type(self, node_type: str) -> list[NodeId]:
        """All node IDs whose type equals ``node_type``."""
        return [n for n in self._nodes if self._node_type[n] == node_type]

    def edges_of_type(self, edge_type: str) -> list[Edge]:
        """All edges whose type equals ``edge_type``."""
        return [e for e in self._edges if e.edge_type == edge_type]

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        """True if any edge connects ``u`` and ``v`` (any type)."""
        if u not in self._adj or v not in self._adj:
            return False
        # iterate over the smaller adjacency list
        if len(self._adj[u]) > len(self._adj[v]):
            u, v = v, u
        return any(nbr == v for nbr, _, _ in self._adj[u])

    def edge_weight(self, u: NodeId, v: NodeId) -> float:
        """Total weight between ``u`` and ``v`` summed over parallel edges.

        Raises:
            KeyError: if no edge connects the two nodes.
        """
        total = 0.0
        found = False
        for nbr, weight, _ in self._adj[u]:
            if nbr == v:
                total += weight
                found = True
        if not found:
            raise KeyError(f"no edge between {u!r} and {v!r}")
        return total

    def __contains__(self, node: NodeId) -> bool:
        return self.has_node(node)

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._nodes)

    def __len__(self) -> int:
        return self.num_nodes

    def __repr__(self) -> str:
        return (
            f"HeteroGraph(nodes={self.num_nodes}, edges={self.num_edges}, "
            f"node_types={sorted(self.node_types)}, "
            f"edge_types={sorted(self.edge_types)})"
        )

    def __getstate__(self) -> dict:
        # never serialize the cached CSRAdjacency (the attribute name is
        # owned by repro.graph.csr, which imports this module): the cache
        # identifies itself by graph identity, which pickling breaks, and
        # shipping a graph must not drag flattened adjacency/alias arrays
        # along — workers rebuild or attach via shared memory instead
        state = dict(self.__dict__)
        state.pop("_csr_adjacency_cache", None)
        return state

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def subgraph_of_edges(self, edges: Iterable[Edge]) -> "HeteroGraph":
        """Graph induced by ``edges`` and their endpoints.

        Node types are inherited from this graph.  This is the primitive
        behind view separation (Definition 2) and paired-subviews
        (Definition 5).
        """
        sub = HeteroGraph()
        for edge in edges:
            sub.add_edge(
                edge.u,
                edge.v,
                edge.edge_type,
                edge.weight,
                u_type=self._node_type[edge.u],
                v_type=self._node_type[edge.v],
            )
        return sub

    def subgraph_of_nodes(self, nodes: Iterable[NodeId]) -> "HeteroGraph":
        """Graph induced by ``nodes`` and all edges between them."""
        keep = set(nodes)
        sub = HeteroGraph()
        for node in self._nodes:
            if node in keep:
                sub.add_node(node, self._node_type[node])
        for edge in self._edges:
            if edge.u in keep and edge.v in keep:
                sub.add_edge(edge.u, edge.v, edge.edge_type, edge.weight)
        return sub

    def without_edges(self, removed: Iterable[Edge]) -> "HeteroGraph":
        """A copy of this graph with the given edges removed.

        Nodes are all kept (possibly isolated) so that every node still has
        an embedding after training on the reduced graph — exactly what the
        link-prediction protocol of Section IV-B2 needs.
        """
        removed_set = set(id(e) for e in removed)
        sub = HeteroGraph()
        for node in self._nodes:
            sub.add_node(node, self._node_type[node])
        for edge in self._edges:
            if id(edge) not in removed_set:
                sub.add_edge(edge.u, edge.v, edge.edge_type, edge.weight)
        return sub

    def to_networkx(self):
        """Export to a ``networkx.MultiGraph`` (for inspection/debugging)."""
        import networkx as nx

        nxg = nx.MultiGraph()
        for node in self._nodes:
            nxg.add_node(node, node_type=self._node_type[node])
        for edge in self._edges:
            nxg.add_edge(
                edge.u, edge.v, edge_type=edge.edge_type, weight=edge.weight
            )
        return nxg
