"""Heterogeneous graph substrate.

This subpackage provides the typed-graph data structures that every other
part of the reproduction builds on:

- :class:`~repro.graph.heterograph.HeteroGraph` — an undirected graph whose
  nodes carry a node type and whose edges carry an edge type and a positive
  weight (Definition 1 of the paper).
- :mod:`~repro.graph.views` — view separation by edge type, view-pairs, and
  paired-subviews (Definitions 2-5).
- :class:`~repro.graph.alias.AliasSampler` — O(1) discrete sampling used by
  every random-walk engine.
- :mod:`~repro.graph.csr` — the flat (cached, per-graph) CSR adjacency
  layout shared by the scalar and batched walk engines.
- :mod:`~repro.graph.stats` — dataset statistics in the shape of Table II.
"""

from repro.graph.alias import AliasSampler
from repro.graph.csr import CSRAdjacency, csr_adjacency
from repro.graph.heterograph import HeteroGraph
from repro.graph.io import (
    load_embeddings,
    load_graph,
    save_embeddings,
    save_graph,
)
from repro.graph.stats import GraphStatistics, compute_statistics
from repro.graph.views import (
    View,
    ViewPair,
    build_view_pairs,
    paired_subviews,
    separate_views,
)

__all__ = [
    "AliasSampler",
    "CSRAdjacency",
    "csr_adjacency",
    "HeteroGraph",
    "GraphStatistics",
    "compute_statistics",
    "View",
    "ViewPair",
    "build_view_pairs",
    "paired_subviews",
    "separate_views",
    "save_graph",
    "load_graph",
    "save_embeddings",
    "load_embeddings",
]
