"""Serialization of heterogeneous graphs and embeddings.

Formats:

- graphs: a TSV edge list with a node-type header block, so a dataset can
  be shipped as a single human-readable file::

      # node <TAB> node_id <TAB> node_type
      # edge <TAB> u <TAB> v <TAB> edge_type <TAB> weight
      node    a1      author
      node    p1      paper
      edge    a1      p1      authorship      1.0

- embeddings: the word2vec text format (``<n> <d>`` header, then
  ``node_id v1 v2 ...`` per line), readable by most embedding tooling.
  ``float32`` embeddings extend the header to ``<n> <d> float32`` so a
  round trip preserves the storage dtype (plain two-field headers load
  as ``float64``, matching every external writer); values are printed
  with enough significant digits (9 for float32, 17 for float64) that
  loading reproduces the saved array bit for bit.

Node IDs are stored as strings; loading returns string IDs.

Both writers are atomic: content goes to a temporary file in the target
directory, is fsynced, and then renamed over the destination, so a crash
mid-write can never leave a truncated graph or embedding file behind —
either the old file survives intact or the new one is complete.  Loaders
reject malformed rows with errors naming the file, line number, and
reason.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator, Mapping

import numpy as np

from repro.graph.heterograph import HeteroGraph, NodeId


@contextmanager
def atomic_writer(path: str | Path, mode: str = "w") -> Iterator[IO]:
    """Write-to-temp + fsync + rename: the destination either keeps its
    old content or receives the complete new content, never a prefix.

    Shared by the graph/embedding writers here and other single-file
    artifacts (e.g. :mod:`repro.engine.observability` run reports and
    the binary :mod:`repro.serving.store` files, which pass
    ``mode="wb"``)."""
    if mode not in ("w", "wb"):
        raise ValueError(f"atomic_writer mode must be 'w' or 'wb', got {mode!r}")
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    try:
        with tmp.open(mode) as handle:
            yield handle
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def save_graph(graph: HeteroGraph, path: str | Path) -> None:
    """Atomically write ``graph`` as a typed TSV edge list (see module
    docstring)."""
    path = Path(path)
    with atomic_writer(path) as handle:
        handle.write("# node\tnode_id\tnode_type\n")
        handle.write("# edge\tu\tv\tedge_type\tweight\n")
        for node in graph.nodes:
            handle.write(f"node\t{node}\t{graph.node_type(node)}\n")
        for edge in graph.edges:
            handle.write(
                f"edge\t{edge.u}\t{edge.v}\t{edge.edge_type}\t"
                f"{edge.weight!r}\n"
            )


def load_graph(path: str | Path) -> HeteroGraph:
    """Read a graph written by :func:`save_graph`.

    Raises:
        ValueError: on malformed records or unknown record kinds; the
            message names the file, line number, and what was wrong.
    """
    graph = HeteroGraph()
    path = Path(path)
    with path.open() as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.rstrip("\n")
            if not line or line.startswith("#"):
                continue
            parts = line.split("\t")
            kind = parts[0]
            if kind == "node":
                if len(parts) != 3:
                    raise ValueError(
                        f"{path}:{line_number}: node records need 3 fields "
                        f"(node_id, node_type), got {len(parts)}"
                    )
                graph.add_node(parts[1], parts[2])
            elif kind == "edge":
                if len(parts) != 5:
                    raise ValueError(
                        f"{path}:{line_number}: edge records need 5 fields "
                        f"(u, v, edge_type, weight), got {len(parts)}"
                    )
                try:
                    weight = float(parts[4])
                except ValueError:
                    raise ValueError(
                        f"{path}:{line_number}: edge weight {parts[4]!r} "
                        "is not a number"
                    ) from None
                graph.add_edge(parts[1], parts[2], parts[3], weight=weight)
            else:
                raise ValueError(
                    f"{path}:{line_number}: unknown record kind {kind!r} "
                    "(expected 'node' or 'edge')"
                )
    return graph


def save_embeddings(
    embeddings: Mapping[NodeId, np.ndarray], path: str | Path
) -> None:
    """Atomically write embeddings in word2vec text format.

    The storage dtype survives the trip: ``float32`` mappings (the
    ``dtype="float32"`` training mode) get a ``float32`` marker appended
    to the header and 9-significant-digit values, ``float64`` keeps the
    plain two-field header with 17 significant digits — both enough for
    :func:`load_embeddings` to reproduce the arrays bit for bit, so
    converting to and from the binary store
    (:mod:`repro.serving.store`) is lossless.  Any other dtype is
    promoted to ``float64``.
    """
    path = Path(path)
    items = list(embeddings.items())
    if not items:
        raise ValueError("cannot save an empty embedding mapping")
    dim = len(items[0][1])
    dtype = np.asarray(items[0][1]).dtype
    if dtype != np.float32:
        dtype = np.dtype(np.float64)
    # 9 significant digits round-trip any float32, 17 any float64
    digits = 9 if dtype == np.float32 else 17
    marker = " float32" if dtype == np.float32 else ""
    with atomic_writer(path) as handle:
        handle.write(f"{len(items)} {dim}{marker}\n")
        for node, vector in items:
            vector = np.asarray(vector, dtype=dtype)
            if vector.shape != (dim,):
                raise ValueError(
                    f"inconsistent dimension for node {node!r}: "
                    f"{vector.shape} vs ({dim},)"
                )
            values = " ".join(f"{x:.{digits}g}" for x in vector)
            handle.write(f"{node} {values}\n")


def load_embeddings(path: str | Path) -> dict[str, np.ndarray]:
    """Read embeddings written by :func:`save_embeddings`.

    Raises:
        ValueError: on a malformed header or row; the message names the
            file, line number, and what was wrong.
    """
    path = Path(path)
    with path.open() as handle:
        header = handle.readline().split()
        if len(header) not in (2, 3):
            raise ValueError(
                f"{path}:1: malformed word2vec header (expected "
                f"'<count> <dim> [dtype]', got {len(header)} fields)"
            )
        try:
            count, dim = int(header[0]), int(header[1])
        except ValueError:
            raise ValueError(
                f"{path}:1: word2vec header fields must be integers, "
                f"got {header[0]!r} {header[1]!r}"
            ) from None
        dtype = np.dtype(np.float64)
        if len(header) == 3:
            if header[2] not in ("float32", "float64"):
                raise ValueError(
                    f"{path}:1: unknown embedding dtype {header[2]!r} "
                    "(expected float32 or float64)"
                )
            dtype = np.dtype(header[2])
        embeddings: dict[str, np.ndarray] = {}
        for line_number, raw in enumerate(handle, start=2):
            parts = raw.split()
            if not parts:
                continue
            if len(parts) != dim + 1:
                raise ValueError(
                    f"{path}:{line_number}: expected {dim + 1} fields "
                    f"(node id + {dim} values), got {len(parts)}"
                )
            try:
                vector = np.array(
                    [float(x) for x in parts[1:]], dtype=dtype
                )
            except ValueError:
                raise ValueError(
                    f"{path}:{line_number}: non-numeric embedding value "
                    f"for node {parts[0]!r}"
                ) from None
            embeddings[parts[0]] = vector
    if len(embeddings) != count:
        raise ValueError(
            f"{path}: header promises {count} rows, found {len(embeddings)}"
        )
    return embeddings
