"""Serialization of heterogeneous graphs and embeddings.

Formats:

- graphs: a TSV edge list with a node-type header block, so a dataset can
  be shipped as a single human-readable file::

      # node <TAB> node_id <TAB> node_type
      # edge <TAB> u <TAB> v <TAB> edge_type <TAB> weight
      node    a1      author
      node    p1      paper
      edge    a1      p1      authorship      1.0

- embeddings: the word2vec text format (``<n> <d>`` header, then
  ``node_id v1 v2 ...`` per line), readable by most embedding tooling.

Node IDs are stored as strings; loading returns string IDs.
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping

import numpy as np

from repro.graph.heterograph import HeteroGraph, NodeId


def save_graph(graph: HeteroGraph, path: str | Path) -> None:
    """Write ``graph`` as a typed TSV edge list (see module docstring)."""
    path = Path(path)
    with path.open("w") as handle:
        handle.write("# node\tnode_id\tnode_type\n")
        handle.write("# edge\tu\tv\tedge_type\tweight\n")
        for node in graph.nodes:
            handle.write(f"node\t{node}\t{graph.node_type(node)}\n")
        for edge in graph.edges:
            handle.write(
                f"edge\t{edge.u}\t{edge.v}\t{edge.edge_type}\t"
                f"{edge.weight!r}\n"
            )


def load_graph(path: str | Path) -> HeteroGraph:
    """Read a graph written by :func:`save_graph`.

    Raises:
        ValueError: on malformed records or unknown record kinds.
    """
    graph = HeteroGraph()
    path = Path(path)
    with path.open() as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.rstrip("\n")
            if not line or line.startswith("#"):
                continue
            parts = line.split("\t")
            kind = parts[0]
            if kind == "node":
                if len(parts) != 3:
                    raise ValueError(
                        f"{path}:{line_number}: node records need 3 fields"
                    )
                graph.add_node(parts[1], parts[2])
            elif kind == "edge":
                if len(parts) != 5:
                    raise ValueError(
                        f"{path}:{line_number}: edge records need 5 fields"
                    )
                graph.add_edge(
                    parts[1], parts[2], parts[3], weight=float(parts[4])
                )
            else:
                raise ValueError(
                    f"{path}:{line_number}: unknown record kind {kind!r}"
                )
    return graph


def save_embeddings(
    embeddings: Mapping[NodeId, np.ndarray], path: str | Path
) -> None:
    """Write embeddings in word2vec text format."""
    path = Path(path)
    items = list(embeddings.items())
    if not items:
        raise ValueError("cannot save an empty embedding mapping")
    dim = len(items[0][1])
    with path.open("w") as handle:
        handle.write(f"{len(items)} {dim}\n")
        for node, vector in items:
            vector = np.asarray(vector)
            if vector.shape != (dim,):
                raise ValueError(
                    f"inconsistent dimension for node {node!r}: "
                    f"{vector.shape} vs ({dim},)"
                )
            values = " ".join(f"{x:.8g}" for x in vector)
            handle.write(f"{node} {values}\n")


def load_embeddings(path: str | Path) -> dict[str, np.ndarray]:
    """Read embeddings written by :func:`save_embeddings`."""
    path = Path(path)
    with path.open() as handle:
        header = handle.readline().split()
        if len(header) != 2:
            raise ValueError(f"{path}: malformed word2vec header")
        count, dim = int(header[0]), int(header[1])
        embeddings: dict[str, np.ndarray] = {}
        for raw in handle:
            parts = raw.split()
            if len(parts) != dim + 1:
                raise ValueError(
                    f"{path}: expected {dim + 1} fields, got {len(parts)}"
                )
            embeddings[parts[0]] = np.array(
                [float(x) for x in parts[1:]], dtype=np.float64
            )
    if len(embeddings) != count:
        raise ValueError(
            f"{path}: header promises {count} rows, found {len(embeddings)}"
        )
    return embeddings
