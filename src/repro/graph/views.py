"""View separation by edge type (Definitions 2-5 of the paper).

TransN splits a heterogeneous network into one view per *edge type*.  Unlike
splitting by node type (as HNE and DMNE do), this guarantees that no view
contains isolated nodes: a view is the subgraph induced by all edges of one
type, so every node of the view is the end-node of at least one edge
(Figure 2(c) of the paper).

Every view is either a *homo-view* (one node type, one edge type) or a
*heter-view* (two node types, one edge type), because an edge type
implicitly constrains its end-nodes' types (Definition 4).

Two views form a *view-pair* when they share at least one node
(Definition 3); the shared nodes are the bridges along which the cross-view
algorithm transfers information.  For each view-pair the cross-view
algorithm works on *paired-subviews* (Definition 5): the subgraphs induced
by the common nodes together with their neighbours inside each view.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.heterograph import HeteroGraph, NodeId


@dataclass(frozen=True)
class View:
    """The i-th view phi_i = {V_i, E_i} of a heterogeneous network.

    Attributes:
        edge_type: the edge type that induced this view.
        graph: the induced subgraph (all edges of ``edge_type`` plus their
            end-nodes, with node types inherited from the parent network).
    """

    edge_type: str
    graph: HeteroGraph

    @property
    def nodes(self) -> frozenset[NodeId]:
        """The node set V_i."""
        return frozenset(self.graph.nodes)

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    @property
    def is_homo(self) -> bool:
        """True for a homo-view (single node type, Definition 4)."""
        return len(self.graph.node_types) == 1

    @property
    def is_heter(self) -> bool:
        """True for a heter-view (two node types, Definition 4)."""
        return len(self.graph.node_types) == 2

    def __repr__(self) -> str:
        kind = "homo" if self.is_homo else "heter"
        return (
            f"View(edge_type={self.edge_type!r}, kind={kind}, "
            f"nodes={self.num_nodes}, edges={self.num_edges})"
        )


@dataclass(frozen=True)
class ViewPair:
    """A view-pair eta_{i,j}: two views sharing at least one node."""

    view_i: View
    view_j: View
    common_nodes: frozenset[NodeId] = field(repr=False)

    @property
    def key(self) -> tuple[str, str]:
        """The (edge_type_i, edge_type_j) identifier of this pair."""
        return (self.view_i.edge_type, self.view_j.edge_type)

    def __repr__(self) -> str:
        return (
            f"ViewPair({self.view_i.edge_type!r} <-> "
            f"{self.view_j.edge_type!r}, common={len(self.common_nodes)})"
        )


def separate_views(graph: HeteroGraph) -> list[View]:
    """Split ``graph`` into one view per edge type (Definition 2).

    The returned views partition the edge set: their edge sets are disjoint
    and their union is E (Equation 1 of the paper).  Views are ordered by
    edge-type name for determinism.
    """
    if graph.num_edges == 0:
        raise ValueError("cannot separate views of a graph with no edges")
    views = []
    for edge_type in sorted(graph.edge_types):
        edges = graph.edges_of_type(edge_type)
        views.append(View(edge_type, graph.subgraph_of_edges(edges)))
    return views


def build_view_pairs(views: list[View]) -> list[ViewPair]:
    """All view-pairs (Definition 3) among ``views``, in deterministic order.

    A pair is included only when the two views share at least one node —
    information transfer only makes sense across shared nodes.
    """
    pairs = []
    for a in range(len(views)):
        for b in range(a + 1, len(views)):
            common = views[a].nodes & views[b].nodes
            if common:
                pairs.append(ViewPair(views[a], views[b], frozenset(common)))
    return pairs


def paired_subviews(pair: ViewPair) -> tuple[View, View]:
    """Reduce a view-pair to its paired-subviews (Definition 5).

    Definition 5 writes the node set as ``M_ij ∩ A_ij`` but describes it in
    prose as "the common nodes (and their neighbor nodes)"; since every
    common node trivially has a neighbour inside each view (views have no
    isolated nodes) the intersection reading would collapse to a subset of
    M_ij and discard the neighbours the prose keeps.  We therefore implement
    the union ``M_ij ∪ A_ij``: the common nodes plus all nodes adjacent to a
    common node, inside each view separately.
    """
    common = pair.common_nodes
    subviews = []
    for view in (pair.view_i, pair.view_j):
        keep = set(common & view.nodes)
        for node in common:
            if node in view.nodes:
                keep.update(view.graph.neighbors(node))
        sub = view.graph.subgraph_of_nodes(keep)
        subviews.append(View(view.edge_type, sub))
    return subviews[0], subviews[1]
