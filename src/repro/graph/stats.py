"""Dataset statistics in the shape of Table II of the paper."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.graph.heterograph import HeteroGraph


@dataclass(frozen=True)
class GraphStatistics:
    """One row of Table II.

    Attributes:
        name: dataset name.
        num_nodes: |V|.
        num_edges: |E|.
        nodes_per_type: node counts keyed by node type.
        edges_per_type: edge counts keyed by edge type.
        num_labeled: number of labelled nodes (0 when no labels given).
        labeled_type: the node type that carries labels, if any.
        density: 2|E| / (|V| (|V|-1)).
        average_degree: 2|E| / |V|.
    """

    name: str
    num_nodes: int
    num_edges: int
    nodes_per_type: dict[str, int] = field(hash=False)
    edges_per_type: dict[str, int] = field(hash=False)
    num_labeled: int
    labeled_type: str | None
    density: float
    average_degree: float

    def as_row(self) -> dict[str, object]:
        """Flatten into the column layout of Table II."""
        node_types = ", ".join(
            f"{t}({c:,})" for t, c in sorted(self.nodes_per_type.items())
        )
        edge_types = ", ".join(
            f"{t}({c:,})" for t, c in sorted(self.edges_per_type.items())
        )
        labeled = (
            f"{self.labeled_type}({self.num_labeled:,})"
            if self.labeled_type
            else "-"
        )
        return {
            "Dataset": self.name,
            "#Nodes": f"{self.num_nodes:,}",
            "#Edges": f"{self.num_edges:,}",
            "Node Types (#Nodes)": node_types,
            "#Labeled Nodes": labeled,
            "Edge Types (#Edges)": edge_types,
        }


def compute_statistics(
    graph: HeteroGraph,
    name: str = "unnamed",
    labels: dict | None = None,
) -> GraphStatistics:
    """Compute the Table II statistics of ``graph``.

    Args:
        graph: the heterogeneous network.
        labels: optional node-id -> label mapping; label counts and the
            labelled node type are derived from it.
    """
    nodes_per_type = Counter(graph.node_type(n) for n in graph.nodes)
    edges_per_type = Counter(e.edge_type for e in graph.edges)
    num_labeled = 0
    labeled_type = None
    if labels:
        labeled_nodes = [n for n in labels if graph.has_node(n)]
        num_labeled = len(labeled_nodes)
        if labeled_nodes:
            types = Counter(graph.node_type(n) for n in labeled_nodes)
            labeled_type = types.most_common(1)[0][0]
    n, m = graph.num_nodes, graph.num_edges
    density = (2.0 * m / (n * (n - 1))) if n > 1 else 0.0
    average_degree = (2.0 * m / n) if n else 0.0
    return GraphStatistics(
        name=name,
        num_nodes=n,
        num_edges=m,
        nodes_per_type=dict(nodes_per_type),
        edges_per_type=dict(edges_per_type),
        num_labeled=num_labeled,
        labeled_type=labeled_type,
        density=density,
        average_degree=average_degree,
    )
